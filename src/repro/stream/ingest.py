"""Incremental session ingest: feed → snapshot → merge.

The streaming counterpart of :func:`repro.netmodel.rtt.sampled_median_matrix`:
instead of materializing every session RTT and taking one median per
⟨PoP, prefix, route⟩ 15-minute window, a :class:`SessionIngestor` folds
session batches into one mergeable quantile sketch per cell.  Memory is
O(windows × keys), not O(sessions).

The unit of transport is a :class:`SessionBatch` — a compact columnar
slab of ⟨key id, time, RTT⟩ rows plus a key table resolving ids to
⟨PoP code, prefix id, route index⟩ triples.  Batches are what the
synthesizer (:mod:`repro.stream.sessions`) yields and what shards feed.

Determinism contract: feeding the same batches in the same order always
yields byte-identical snapshots, and merging shard snapshots whose key
sets are disjoint is byte-identical to one ingestor having seen all the
shards' batches (each key's samples arrive in the same order either
way).  An :class:`ExactIngestor` twin retains raw samples (O(sessions)
memory — the thing this subsystem exists to avoid) so tests can bound
sketch error against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StreamError
from repro.obs.trace import counter
from repro.stream.sketch import (
    SKETCH_KINDS,
    CentroidSketch,
    P2Sketch,
    Sketch,
    _dump_canonical,
    sketch_from_dict,
)
from repro.stream.window import WindowedAggregator, WindowSpec

#: ⟨PoP code, prefix id, route index⟩ — the cell key of the measurement plane.
Key = Tuple[str, str, int]

_SNAPSHOT_SCHEMA = 1


@dataclass(frozen=True)
class IngestConfig:
    """Configuration shared by every shard of one ingest campaign.

    A frozen dataclass of scalars so it can ride inside a
    :class:`~repro.runner.job.JobSpec` (content-hashable) unchanged.
    """

    window_minutes: float = 15.0
    sketch: str = "centroid"
    max_centroids: int = 64
    allowed_lateness_windows: int = 1

    def __post_init__(self) -> None:
        if self.window_minutes <= 0:
            raise StreamError(
                f"window_minutes must be positive, got {self.window_minutes}"
            )
        if self.sketch not in SKETCH_KINDS:
            raise StreamError(
                f"unknown sketch kind {self.sketch!r}; "
                f"expected one of {sorted(SKETCH_KINDS)}"
            )
        if self.max_centroids < 8:
            raise StreamError(
                f"max_centroids must be >= 8, got {self.max_centroids}"
            )
        if self.allowed_lateness_windows < 0:
            raise StreamError(
                "allowed_lateness_windows must be >= 0, got "
                f"{self.allowed_lateness_windows}"
            )

    def make_sketch(self) -> Sketch:
        if self.sketch == "p2":
            return P2Sketch(p=0.5)
        return CentroidSketch(max_centroids=self.max_centroids)


@dataclass(frozen=True)
class SessionBatch:
    """One columnar slab of sessions: aligned key ids, times, RTTs."""

    key_table: Tuple[Key, ...]
    key_ids: np.ndarray
    times_h: np.ndarray
    rtt_ms: np.ndarray

    def __post_init__(self) -> None:
        ids = np.asarray(self.key_ids)
        times = np.asarray(self.times_h, dtype=np.float64)
        rtts = np.asarray(self.rtt_ms, dtype=np.float64)
        if not (ids.shape == times.shape == rtts.shape) or ids.ndim != 1:
            raise StreamError(
                "key_ids, times_h and rtt_ms must be aligned 1-d arrays, got "
                f"shapes {ids.shape}, {times.shape}, {rtts.shape}"
            )
        if ids.size:
            if ids.min() < 0 or ids.max() >= len(self.key_table):
                raise StreamError(
                    f"key id out of range for a table of {len(self.key_table)}"
                )
            if not np.all(np.isfinite(times)):
                raise StreamError("session times must be finite")
            if not np.all(np.isfinite(rtts)):
                raise StreamError("session RTTs must be finite")
        object.__setattr__(self, "key_ids", ids.astype(np.int64))
        object.__setattr__(self, "times_h", times)
        object.__setattr__(self, "rtt_ms", rtts)

    @property
    def n_sessions(self) -> int:
        return int(self.key_ids.size)

    @classmethod
    def from_rows(
        cls, rows: Iterable[Tuple[Key, float, float]]
    ) -> "SessionBatch":
        """Build a batch from ⟨key, time, rtt⟩ rows (test convenience)."""
        materialized = list(rows)
        table: List[Key] = []
        index: Dict[Key, int] = {}
        ids = np.empty(len(materialized), dtype=np.int64)
        times = np.empty(len(materialized), dtype=np.float64)
        rtts = np.empty(len(materialized), dtype=np.float64)
        for i, (key, t, rtt) in enumerate(materialized):
            kid = index.get(key)
            if kid is None:
                kid = index[key] = len(table)
                table.append(key)
            ids[i] = kid
            times[i] = t
            rtts[i] = rtt
        return cls(
            key_table=tuple(table), key_ids=ids, times_h=times, rtt_ms=rtts
        )


@dataclass(frozen=True)
class IngestSnapshot:
    """Immutable, serializable state of an ingestor: one sketch per cell.

    ``entries`` is sorted by ⟨key, window⟩ so equal ingest state always
    serializes to identical bytes.
    """

    config: IngestConfig
    sessions: int
    late_dropped: int
    entries: Tuple[Tuple[Key, int, Mapping[str, object]], ...]

    def median_matrix(
        self, pairs: Sequence[object], times_h: np.ndarray, max_routes: int
    ) -> np.ndarray:
        """Render sketch medians into the batch lane's (P, W, K) layout.

        ``pairs`` are :class:`~repro.edgefabric.dataset.PairKey`-like
        objects (``pop_code``/``prefix.pid`` attributes); cells with no
        sketch stay NaN, matching routes a pair does not have.  Window
        column indices come from window *midpoints* so non-dyadic
        window widths cannot fall on a float boundary.
        """
        spec = WindowSpec(self.config.window_minutes)
        times = np.asarray(times_h, dtype=np.float64)
        widx = spec.index_of(times + 0.5 * spec.hours)
        col_of = {int(w): i for i, w in enumerate(widx)}
        pair_of = {
            (p.pop_code, p.prefix.pid): i for i, p in enumerate(pairs)
        }
        out = np.full((len(pairs), times.size, max_routes), np.nan)
        for (pop, pid, route), window, payload in self.entries:
            pi = pair_of.get((pop, pid))
            ci = col_of.get(window)
            if pi is None or ci is None or route >= max_routes:
                continue
            sketch = sketch_from_dict(payload)
            if sketch.count:
                out[pi, ci, route] = sketch.quantile(0.5)
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": _SNAPSHOT_SCHEMA,
            "kind": "ingest-snapshot",
            "window_minutes": self.config.window_minutes,
            "sketch": self.config.sketch,
            "max_centroids": self.config.max_centroids,
            "allowed_lateness_windows": self.config.allowed_lateness_windows,
            "sessions": self.sessions,
            "late_dropped": self.late_dropped,
            "entries": [
                {
                    "pop": key[0],
                    "prefix": key[1],
                    "route": key[2],
                    "window": window,
                    "sketch": dict(payload),
                }
                for key, window, payload in self.entries
            ],
        }

    def to_json(self) -> str:
        return _dump_canonical(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "IngestSnapshot":
        try:
            if data["kind"] != "ingest-snapshot":
                raise StreamError(
                    f"not an ingest snapshot: kind={data['kind']!r}"
                )
            if data["schema"] != _SNAPSHOT_SCHEMA:
                raise StreamError(
                    f"unsupported snapshot schema {data['schema']!r}"
                )
            config = IngestConfig(
                window_minutes=float(data["window_minutes"]),  # type: ignore[arg-type]
                sketch=str(data["sketch"]),
                max_centroids=int(data["max_centroids"]),  # type: ignore[call-overload]
                allowed_lateness_windows=int(
                    data["allowed_lateness_windows"]  # type: ignore[call-overload]
                ),
            )
            entries = []
            for row in data["entries"]:  # type: ignore[attr-defined]
                key = (str(row["pop"]), str(row["prefix"]), int(row["route"]))
                entries.append((key, int(row["window"]), row["sketch"]))
            return cls(
                config=config,
                sessions=int(data["sessions"]),  # type: ignore[call-overload]
                late_dropped=int(data["late_dropped"]),  # type: ignore[call-overload]
                entries=tuple(entries),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamError(f"malformed ingest snapshot: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "IngestSnapshot":
        import json

        try:
            data = json.loads(text)
        except ValueError as exc:
            raise StreamError(f"snapshot is not valid JSON: {exc}") from exc
        if not isinstance(data, Mapping):
            raise StreamError("snapshot JSON must be an object")
        return cls.from_dict(data)


class SessionIngestor:
    """Streaming aggregation of session batches into per-cell sketches."""

    def __init__(self, config: Optional[IngestConfig] = None) -> None:
        self.config = config or IngestConfig()
        self._agg = WindowedAggregator(
            window_minutes=self.config.window_minutes,
            sketch_factory=self.config.make_sketch,
            allowed_lateness_windows=self.config.allowed_lateness_windows,
        )
        self.sessions = 0
        self.batches = 0

    @property
    def late_dropped(self) -> int:
        return self._agg.late_dropped

    @property
    def n_cells(self) -> int:
        return self._agg.n_cells

    @property
    def peak_open_cells(self) -> int:
        return self._agg.peak_open

    @property
    def watermark_h(self) -> float:
        return self._agg.watermark_h

    def feed(self, batch: SessionBatch) -> None:
        """Fold one batch, then advance the watermark to its newest time."""
        if batch.n_sessions:
            order = np.argsort(batch.key_ids, kind="stable")
            ids = batch.key_ids[order]
            times = batch.times_h[order]
            rtts = batch.rtt_ms[order]
            bounds = np.flatnonzero(np.diff(ids)) + 1
            for id_chunk, t_chunk, r_chunk in zip(
                np.split(ids, bounds),
                np.split(times, bounds),
                np.split(rtts, bounds),
            ):
                key = batch.key_table[int(id_chunk[0])]
                self._agg.observe(key, t_chunk, r_chunk)
            self._agg.advance_watermark(float(batch.times_h.max()))
        self.sessions += batch.n_sessions
        self.batches += 1
        counter("stream.ingest.sessions", batch.n_sessions)
        counter("stream.ingest.batches", 1)

    def merge(self, other: "SessionIngestor") -> "SessionIngestor":
        """Fold another ingestor's state into this one (in place)."""
        if other.config != self.config:
            raise StreamError(
                "cannot merge ingestors with different configs: "
                f"{self.config} vs {other.config}"
            )
        for key, window, sketch in sorted(
            other._agg.items(), key=lambda kws: (kws[0], kws[1])
        ):
            mine = self._agg.get(key, window)
            if mine is None or mine.count == 0:
                # Adopt a copy: merging into an empty sketch would
                # recompress, breaking byte-identity of shard merges.
                self._agg.adopt(key, window, sketch_from_dict(sketch.to_dict()))
            else:
                mine.merge(sketch)
        if other._agg.watermark_h > self._agg.watermark_h:
            self._agg.advance_watermark(other._agg.watermark_h)
        self.sessions += other.sessions
        self.batches += other.batches
        self._agg.late_dropped += other._agg.late_dropped
        return self

    def snapshot(self) -> IngestSnapshot:
        entries = sorted(
            (
                (key, window, sketch.to_dict())
                for key, window, sketch in self._agg.items()
            ),
            key=lambda kws: (kws[0], kws[1]),
        )
        return IngestSnapshot(
            config=self.config,
            sessions=self.sessions,
            late_dropped=self.late_dropped,
            entries=tuple(entries),
        )


@dataclass
class ExactIngestor:
    """O(sessions)-memory reference twin retaining every raw sample.

    Same ``feed``/``merge`` surface as :class:`SessionIngestor` so lane
    tests can run both over one stream and compare medians.  Keeps no
    watermark: every sample is retained, late or not (documented
    asymmetry — exactness is the point of this lane).
    """

    window_minutes: float = 15.0
    _cells: Dict[Tuple[Key, int], List[float]] = field(default_factory=dict)
    sessions: int = 0

    def feed(self, batch: SessionBatch) -> None:
        spec = WindowSpec(self.window_minutes)
        widx = spec.index_of(batch.times_h)
        for kid, w, rtt in zip(batch.key_ids, widx, batch.rtt_ms):
            cell = (batch.key_table[int(kid)], int(w))
            self._cells.setdefault(cell, []).append(float(rtt))
        self.sessions += batch.n_sessions

    def merge(self, other: "ExactIngestor") -> "ExactIngestor":
        if other.window_minutes != self.window_minutes:
            raise StreamError(
                "cannot merge exact ingestors with different windows: "
                f"{self.window_minutes} vs {other.window_minutes}"
            )
        for cell, samples in other._cells.items():
            self._cells.setdefault(cell, []).extend(samples)
        self.sessions += other.sessions
        return self

    def medians(self) -> Dict[Tuple[Key, int], float]:
        return {
            cell: float(np.median(samples))
            for cell, samples in self._cells.items()
        }


def merge_snapshots(snapshots: Sequence[IngestSnapshot]) -> IngestSnapshot:
    """Deterministically fold shard snapshots into one.

    All snapshots must share one config.  Per-cell sketches are merged
    in sorted ⟨key, window⟩ order; for the disjoint-key sharding the
    campaign layer uses, the result is byte-identical to a single
    ingestor having consumed every shard's stream.
    """
    if not snapshots:
        raise StreamError("cannot merge zero snapshots")
    config = snapshots[0].config
    for snap in snapshots[1:]:
        if snap.config != config:
            raise StreamError(
                "cannot merge snapshots with different configs: "
                f"{config} vs {snap.config}"
            )
    cells: Dict[Tuple[Key, int], Sketch] = {}
    sessions = 0
    late = 0
    for snap in snapshots:
        sessions += snap.sessions
        late += snap.late_dropped
        for key, window, payload in snap.entries:
            cell = (key, window)
            incoming = sketch_from_dict(payload)
            existing = cells.get(cell)
            if existing is None:
                cells[cell] = incoming
            else:
                existing.merge(incoming)
    entries = tuple(
        (key, window, cells[(key, window)].to_dict())
        for key, window in sorted(cells)
    )
    return IngestSnapshot(
        config=config,
        sessions=sessions,
        late_dropped=late,
        entries=entries,
    )
