"""Synthesize an edge-fabric session stream, one batch per window chunk.

The batch lane (:func:`repro.edgefabric.sampler.synthesize_dataset`)
materializes the full ⟨pairs × windows × routes⟩ floor tensor and applies
an *analytic* approximation of the sampled median.  This module is the
session-level view of the same model: it draws every individual session
MinRTT (floor plus an exponential residual, exactly
:func:`repro.netmodel.rtt.sample_min_rtts`'s distribution) and yields
them as :class:`~repro.stream.ingest.SessionBatch` slabs in time order,
a chunk of windows at a time — so peak memory is O(chunk), never
O(sessions).

Determinism notes:

* The per-pair last-mile draw happens first, exactly like the fast
  batch lane — so the latency *floors* under both lanes are
  bit-identical; only the residual handling differs (real exponential
  samples here, analytic median + normal estimation noise there).
* The residual stream draws one ``rng.exponential`` per window, so the
  generated sessions are independent of ``chunk_windows`` — resizing
  chunks reorders nothing.
* The congestion models are evaluated once over the whole horizon
  (O(pairs × windows) memory — the same order as the snapshot being
  built) and *sliced* per chunk.  Evaluating them chunk-by-chunk
  instead would perturb floors by an ulp (numpy's reductions are
  length-dependent), silently breaking chunk-size invariance.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.errors import MeasurementError
from repro.netmodel import CongestionModel
from repro.obs.trace import counter, traced
from repro.workloads import diurnal_volume_matrix, sessions_matrix
from repro.edgefabric.dataset import window_times
from repro.edgefabric.sampler import MeasurementConfig, MeasurementPlan
from repro.stream.ingest import Key, SessionBatch


@traced("stream.sessions")
def stream_sessions(
    plan: MeasurementPlan,
    config: Optional[MeasurementConfig] = None,
    chunk_windows: int = 16,
    congestion: Optional[CongestionModel] = None,
    dest_congestion: Optional[CongestionModel] = None,
) -> Iterator[SessionBatch]:
    """Yield the campaign's sessions as batches, one chunk of windows each.

    Args:
        plan: Output of :func:`repro.edgefabric.sampler.plan_measurement`.
        config: Campaign parameters (same object the batch lane takes).
        chunk_windows: Windows per yielded batch; bounds peak memory.
        congestion: Optional pre-built route-specific congestion model
            (must match the config's seed/parameters, as in the batch
            lane).
        dest_congestion: Same, for the destination-side model.
    """
    cfg = config or MeasurementConfig()
    if chunk_windows < 1:
        raise MeasurementError("chunk_windows must be >= 1")
    pairs = list(plan.pairs)
    if not pairs:
        raise MeasurementError("empty measurement plan")
    rng = np.random.default_rng(cfg.seed)
    times = window_times(cfg.days, cfg.window_minutes)
    if congestion is None:
        congestion = CongestionModel(cfg.seed, cfg.congestion_config())
    if dest_congestion is None:
        dest_congestion = CongestionModel(cfg.seed, cfg.dest_congestion_config())

    slots = plan.slots()
    pi = slots.pair_of
    n_slots = pi.size
    lo, hi = cfg.last_mile_ms_range
    last_mile = rng.uniform(lo, hi, size=len(pairs))

    dest_keys = [f"dest:{p.prefix.pid}" for p in pairs]
    lons = np.array([p.prefix.city.location.lon for p in pairs])
    cycle = diurnal_volume_matrix(
        times, np.array([p.city.location.lon for p in plan.prefixes])
    )
    sessions = sessions_matrix(
        plan.prefixes, times, sessions_at_peak=cfg.sessions_at_peak, cycle=cycle
    )

    key_table = session_key_table(plan)
    slot_index = np.arange(n_slots)
    half_window_h = 0.5 * cfg.window_minutes / 60.0

    # Full-horizon model evaluation, identical to the fast batch lane's
    # calls — chunks slice columns out of these, so the floors are
    # bit-identical for every chunk_windows setting.
    shared_full = dest_congestion.shared_delay_batch(dest_keys, lons, times)
    link_full = congestion.link_delay_batch(list(slots.keys), times)

    for w0 in range(0, times.size, chunk_windows):
        t_chunk = times[w0 : w0 + chunk_windows]
        cols = slice(w0, w0 + t_chunk.size)
        floor = shared_full[:, cols][pi]
        floor = floor + (slots.base_rtt + last_mile[pi])[:, None]
        floor += link_full[:, cols][slots.link_of]
        floor += link_full[:, cols][slots.interior_of]

        id_parts: List[np.ndarray] = []
        time_parts: List[np.ndarray] = []
        rtt_parts: List[np.ndarray] = []
        for wi in range(t_chunk.size):
            counts = sessions[pi, w0 + wi]
            total = int(counts.sum())
            if total == 0:
                continue
            ids = np.repeat(slot_index, counts)
            floors = np.repeat(floor[:, wi], counts)
            # One residual draw per window keeps the stream identical
            # for every chunk_windows setting.
            rtts = floors + rng.exponential(cfg.min_rtt_noise_ms, size=total)
            id_parts.append(ids)
            time_parts.append(np.full(total, t_chunk[wi] + half_window_h))
            rtt_parts.append(rtts)
        if not id_parts:
            continue
        batch = SessionBatch(
            key_table=key_table,
            key_ids=np.concatenate(id_parts),
            times_h=np.concatenate(time_parts),
            rtt_ms=np.concatenate(rtt_parts),
        )
        counter("stream.sessions.synthesized", batch.n_sessions)
        yield batch


def session_key_table(plan: MeasurementPlan) -> tuple:
    """The ⟨PoP, prefix, route⟩ key per spray slot, in slot order."""
    slots = plan.slots()
    pairs = plan.pairs
    keys: List[Key] = []
    for s in range(slots.pair_of.size):
        pair = pairs[slots.pair_of[s]]
        keys.append((pair.pop_code, pair.prefix.pid, int(slots.route_of[s])))
    return tuple(keys)
