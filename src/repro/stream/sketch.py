"""Mergeable streaming quantile sketches (pure numpy).

Two estimators behind one small API (``update`` / ``update_batch`` /
``merge`` / ``quantile`` / ``to_dict`` / ``to_json``):

* :class:`P2Sketch` — the P² (piecewise-parabolic) estimator of Jain &
  Chlamtac: five markers tracking a target quantile in O(1) memory.
  Updates are inherently sequential, so ``update_batch`` is a scalar
  loop and ``merge`` replays the other sketch's inverse CDF as
  deterministic synthetic samples.  The reference streaming lane.
* :class:`CentroidSketch` — a compact t-digest-style centroid sketch:
  sorted ``(mean, weight)`` arrays compressed by an arcsine scale
  function, so resolution concentrates at the tails.  ``update_batch``
  is fully vectorized and ``merge`` is a centroid union — the
  production lane for windowed session ingest.

Both are deterministic: no randomness, no wall clock, and a canonical
JSON serialization (sorted keys, compact separators) whose
JSON → sketch → JSON round trip is byte-identical — the property that
makes shard merges and checkpoint resumes comparable by ``==`` on the
serialized form.

Accuracy contracts (pinned by ``tests/test_stream_properties.py``):
with at most ``max_centroids`` distinct samples the centroid sketch is
exact up to one interpolation ulp; beyond that its median sits within
``RANK_TOLERANCE`` of the exact median in rank space.  P² carries a
value-space tolerance on the workload's exponential MinRTT residuals
(see ``docs/streaming.md``).
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.errors import StreamError

#: Anything ``np.asarray`` folds into a 1-D float batch.
ArrayLike = Union[Sequence[float], np.ndarray]

#: Rank-space error bound of ``CentroidSketch.quantile(0.5)`` against
#: the exact median, as a fraction of the sample count (documented and
#: property-tested; one-shot compression error is ~1/max_centroids per
#: compression, accumulated over batched refills).
RANK_TOLERANCE = 0.10

#: P² marker quantiles relative to the target quantile ``p``.
_P2_CELLS = 5


def _interp_sorted(values: List[float], q: float) -> float:
    """Midpoint-rank linear interpolation over a small sorted sample.

    Sample *i* of *n* sits at rank ``(i + 0.5) / n`` — the same
    convention the centroid sketch uses — so exact small-sample paths
    and sketched large-sample paths agree up to interpolation ulps.
    """
    n = len(values)
    ranks = [(i + 0.5) / n for i in range(n)]
    if q <= ranks[0]:
        return values[0]
    if q >= ranks[-1]:
        return values[-1]
    return float(np.interp(q, ranks, values))


class P2Sketch:
    """P² streaming quantile estimator (five markers, O(1) memory).

    Args:
        p: Target quantile in (0, 1).  ``quantile`` is most accurate at
            ``p``; other quantiles interpolate across the five marker
            heights and are coarse by construction.
    """

    kind = "p2"

    def __init__(self, p: float = 0.5) -> None:
        if not 0.0 < p < 1.0:
            raise StreamError(f"P2 target quantile must be in (0, 1), got {p}")
        self.p = float(p)
        self.count = 0
        self._buffer: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []

    def _desired(self) -> List[float]:
        n, p = self.count, self.p
        return [
            1.0,
            1.0 + (n - 1) * p / 2.0,
            1.0 + (n - 1) * p,
            1.0 + (n - 1) * (1.0 + p) / 2.0,
            float(n),
        ]

    def update(self, value: float) -> None:
        """Fold one sample into the marker state."""
        value = float(value)
        if not math.isfinite(value):
            raise StreamError(f"sketch samples must be finite, got {value!r}")
        self.count += 1
        if self.count <= _P2_CELLS:
            self._buffer.append(value)
            if self.count == _P2_CELLS:
                self._heights = sorted(self._buffer)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._buffer = []
            return
        h, pos = self._heights, self._positions
        if value < h[0]:
            h[0] = value
            cell = 0
        elif value >= h[4]:
            h[4] = value
            cell = 3
        else:
            cell = 0
            while value >= h[cell + 1]:
                cell += 1
        for i in range(cell + 1, _P2_CELLS):
            pos[i] += 1.0
        desired = self._desired()
        for i in (1, 2, 3):
            d = desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d > 0 else -1.0
                candidate = _parabolic(h, pos, i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = _linear(h, pos, i, step)
                pos[i] += step

    def update_batch(self, values: ArrayLike) -> None:
        """Fold a batch of samples (a scalar loop — P² is sequential)."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size and not np.all(np.isfinite(arr)):
            raise StreamError("sketch samples must be finite")
        for value in arr:
            self.update(float(value))

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile of everything seen so far.

        Exact (midpoint-rank interpolation) while fewer than five
        samples are buffered; the marker curve afterwards.

        Raises:
            StreamError: On an empty sketch or ``q`` outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise StreamError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise StreamError("cannot query an empty sketch")
        if self._buffer:
            return _interp_sorted(sorted(self._buffer), q)
        ranks = [(p - 1.0) / (self.count - 1) for p in self._positions]
        # Collapse duplicate ranks (early, small counts) keeping the
        # last height so the curve stays a function.
        xs: List[float] = []
        ys: List[float] = []
        for rank, height in zip(ranks, self._heights):
            if xs and rank <= xs[-1]:
                ys[-1] = height
                continue
            xs.append(rank)
            ys.append(height)
        if q <= xs[0]:
            return float(ys[0])
        if q >= xs[-1]:
            return float(ys[-1])
        return float(np.interp(q, xs, ys))

    def merge(self, other: "P2Sketch") -> "P2Sketch":
        """Fold another P² sketch into this one (approximate).

        P² state is not mergeable in closed form; the other sketch's
        inverse CDF is replayed as ``other.count`` deterministic
        synthetic samples at mid-rank quantiles.  O(other.count) time —
        fine at window granularity (tens of sessions), documented as
        approximate.  Returns ``self``.
        """
        if not isinstance(other, P2Sketch):
            raise StreamError(
                f"cannot merge {type(other).__name__} into P2Sketch"
            )
        if other.p != self.p:
            raise StreamError(
                f"cannot merge P2 sketches targeting p={other.p} into p={self.p}"
            )
        if other.count == 0:
            return self
        if other._buffer:
            for value in other._buffer:
                self.update(value)
            return self
        n = other.count
        for i in range(n):
            self.update(other.quantile((i + 0.5) / n))
        return self

    def to_dict(self) -> Dict:
        """Plain-JSON state; ``from_dict`` restores it exactly."""
        return {
            "kind": self.kind,
            "p": self.p,
            "count": self.count,
            "buffer": list(self._buffer),
            "heights": list(self._heights),
            "positions": list(self._positions),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "P2Sketch":
        try:
            sketch = cls(p=float(data["p"]))
            sketch.count = int(data["count"])
            sketch._buffer = [float(v) for v in data["buffer"]]
            sketch._heights = [float(v) for v in data["heights"]]
            sketch._positions = [float(v) for v in data["positions"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamError(f"malformed p2 sketch state: {exc}") from exc
        return sketch

    def to_json(self) -> str:
        return _dump_canonical(self.to_dict())


def _parabolic(h: List[float], pos: List[float], i: int, d: float) -> float:
    """P² piecewise-parabolic height adjustment for marker *i*."""
    return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
        (pos[i] - pos[i - 1] + d)
        * (h[i + 1] - h[i])
        / (pos[i + 1] - pos[i])
        + (pos[i + 1] - pos[i] - d) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
    )


def _linear(h: List[float], pos: List[float], i: int, d: float) -> float:
    """Fallback linear height adjustment when the parabola overshoots."""
    j = i + int(d)
    return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])


class CentroidSketch:
    """t-digest-style centroid sketch: bounded memory, vectorized, mergeable.

    Holds at most ``max_centroids`` weighted centroids, sorted by mean.
    Compression buckets centroids by the arcsine scale function
    ``k(q) = (asin(2q - 1)/π + ½) · max_centroids``, which keeps
    buckets small near the tails where quantile error hurts most.

    While total weight stays at or below ``max_centroids`` every sample
    is its own centroid, so quantiles are exact up to one interpolation
    ulp — which covers a 15-minute window of sampled sessions at the
    paper's rates.
    """

    kind = "centroid"

    def __init__(self, max_centroids: int = 64) -> None:
        if max_centroids < 8:
            raise StreamError(
                f"max_centroids must be >= 8, got {max_centroids}"
            )
        self.max_centroids = int(max_centroids)
        self.count = 0
        self._means = np.empty(0, dtype=np.float64)
        self._weights = np.empty(0, dtype=np.float64)
        self._min = math.inf
        self._max = -math.inf

    @property
    def n_centroids(self) -> int:
        return int(self._means.size)

    def update(self, value: float) -> None:
        self.update_batch(np.asarray([value], dtype=np.float64))

    def update_batch(self, values: ArrayLike) -> None:
        """Fold a batch: append as unit-weight centroids, sort, compress."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        if not np.all(np.isfinite(arr)):
            raise StreamError("sketch samples must be finite")
        self.count += int(arr.size)
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))
        means = np.concatenate([self._means, arr])
        weights = np.concatenate(
            [self._weights, np.ones(arr.size, dtype=np.float64)]
        )
        order = np.argsort(means, kind="stable")
        self._means = means[order]
        self._weights = weights[order]
        self._compress()

    def _compress(self) -> None:
        if self._means.size <= self.max_centroids:
            return
        w = self._weights
        m = self._means
        total = w.sum()
        q = (np.cumsum(w) - 0.5 * w) / total
        k = (np.arcsin(2.0 * q - 1.0) / np.pi + 0.5) * self.max_centroids
        bucket = np.minimum(
            np.floor(k).astype(np.intp), self.max_centroids - 1
        )
        new_w = np.bincount(bucket, weights=w)
        new_sum = np.bincount(bucket, weights=w * m)
        keep = new_w > 0
        self._weights = new_w[keep]
        self._means = new_sum[keep] / new_w[keep]

    def quantile(self, q: float) -> float:
        """Piecewise-linear quantile over cumulative centroid midpoints.

        Raises:
            StreamError: On an empty sketch or ``q`` outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise StreamError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise StreamError("cannot query an empty sketch")
        if self._means.size == 1:
            return float(self._means[0])
        total = self._weights.sum()
        mid = (np.cumsum(self._weights) - 0.5 * self._weights) / total
        xs = np.concatenate([[0.0], mid, [1.0]])
        ys = np.concatenate([[self._min], self._means, [self._max]])
        return float(np.interp(q, xs, ys))

    def merge(self, other: "CentroidSketch") -> "CentroidSketch":
        """Fold another centroid sketch into this one.

        A centroid union followed by one deterministic compression;
        ``other`` is read, never mutated.  Deterministic for a fixed
        merge order (shard merges fold in sorted-key order).  Returns
        ``self``.
        """
        if not isinstance(other, CentroidSketch):
            raise StreamError(
                f"cannot merge {type(other).__name__} into CentroidSketch"
            )
        if other.max_centroids != self.max_centroids:
            raise StreamError(
                "cannot merge centroid sketches with different "
                f"max_centroids ({other.max_centroids} vs {self.max_centroids})"
            )
        if other.count == 0:
            return self
        self.count += other.count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        means = np.concatenate([self._means, other._means])
        weights = np.concatenate([self._weights, other._weights])
        order = np.argsort(means, kind="stable")
        self._means = means[order]
        self._weights = weights[order]
        self._compress()
        return self

    def to_dict(self) -> Dict:
        """Plain-JSON state; ``from_dict`` restores it exactly.

        ``min``/``max`` become ``None`` on an empty sketch so the JSON
        stays strict (no ``Infinity`` literals).
        """
        empty = self.count == 0
        return {
            "kind": self.kind,
            "max_centroids": self.max_centroids,
            "count": self.count,
            "min": None if empty else self._min,
            "max": None if empty else self._max,
            "means": [float(v) for v in self._means],
            "weights": [float(v) for v in self._weights],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CentroidSketch":
        try:
            sketch = cls(max_centroids=int(data["max_centroids"]))
            sketch.count = int(data["count"])
            sketch._means = np.asarray(data["means"], dtype=np.float64)
            sketch._weights = np.asarray(data["weights"], dtype=np.float64)
            sketch._min = math.inf if data["min"] is None else float(data["min"])
            sketch._max = -math.inf if data["max"] is None else float(data["max"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamError(f"malformed centroid sketch state: {exc}") from exc
        return sketch

    def to_json(self) -> str:
        return _dump_canonical(self.to_dict())


#: Either sketch type (they share the update/merge/quantile surface).
Sketch = Union[P2Sketch, CentroidSketch]

#: Registered sketch kinds, by their ``kind`` tag.
SKETCH_KINDS = {
    P2Sketch.kind: P2Sketch,
    CentroidSketch.kind: CentroidSketch,
}


def make_sketch(
    kind: str = "centroid", *, p: float = 0.5, max_centroids: int = 64
) -> Sketch:
    """Construct a sketch by kind name (``"centroid"`` or ``"p2"``)."""
    if kind == CentroidSketch.kind:
        return CentroidSketch(max_centroids=max_centroids)
    if kind == P2Sketch.kind:
        return P2Sketch(p=p)
    raise StreamError(
        f"unknown sketch kind {kind!r}; expected one of {sorted(SKETCH_KINDS)}"
    )


def sketch_from_dict(data: Dict) -> Sketch:
    """Rebuild a sketch from its ``to_dict`` form."""
    if not isinstance(data, dict):
        raise StreamError(f"sketch state must be an object, got {type(data)}")
    kind = data.get("kind")
    cls = SKETCH_KINDS.get(kind)
    if cls is None:
        raise StreamError(
            f"unknown sketch kind {kind!r}; expected one of {sorted(SKETCH_KINDS)}"
        )
    return cls.from_dict(data)


def sketch_from_json(text: str) -> Sketch:
    """Rebuild a sketch from its canonical JSON form."""
    try:
        data = json.loads(text)
    except (json.JSONDecodeError, ValueError) as exc:
        raise StreamError(f"sketch JSON does not parse: {exc}") from exc
    return sketch_from_dict(data)


def _dump_canonical(data: Dict) -> str:
    """The canonical JSON form: sorted keys, compact, strict floats.

    Python's float repr round-trips exactly, so
    JSON → ``from_dict`` → ``to_json`` is byte-identical — the
    determinism contract shard merges and checkpoints rely on.
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
