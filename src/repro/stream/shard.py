"""Sharded ingest as campaign jobs, with deterministic snapshot merge.

An :class:`IngestShardStudy` is a regular study (``run() ->
StudyResult``) whose result carries an ingest snapshot in
``StudyResult.artifacts`` — the plain-JSON channel that survives the
worker process boundary, the result cache, *and* campaign checkpoints
verbatim.  That verbatim transport is what makes the cross-shard merge
deterministic: fresh, cached, and resumed campaigns all hand
:func:`merge_snapshot_artifacts` byte-identical inputs, and the merge
itself folds cells in sorted ⟨key, window⟩ order, so the merged
snapshot is byte-identical every time.

Shards split the measurement plan by pair index (``i % n_shards ==
shard``).  Each shard synthesizes its own session noise (it is an
independent measurement process), so the merged snapshot is
*statistically* equivalent to a single-pass ingest over the full plan,
and *bit*-equal to any other run of the same shard decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Sequence

from repro.errors import StreamError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.study import StudyResult
from repro.obs.trace import span
from repro.stream.ingest import (
    IngestConfig,
    IngestSnapshot,
    SessionIngestor,
    merge_snapshots,
)

#: Artifact key under which shard studies store their snapshot.
SNAPSHOT_ARTIFACT = "ingest_snapshot"


@dataclass
class IngestShardStudy:
    """One shard of a streaming ingest campaign.

    Args:
        seed: Master seed (topology, workload, and session noise).
        n_prefixes: Client prefix population size.
        days: Campaign length in simulated days.
        shard: This shard's index in ``[0, n_shards)``.
        n_shards: Total number of shards the plan is split across.
        sketch: Sketch kind (``"centroid"`` or ``"p2"``).
        max_centroids: Centroid budget for ``"centroid"`` sketches.
        chunk_windows: Windows per synthesized session batch.
    """

    #: Simulated measurement platform (circuit-breaker grouping key).
    platform: ClassVar[str] = "stream"

    seed: int = 0
    n_prefixes: int = 300
    days: float = 10.0
    shard: int = 0
    n_shards: int = 1
    sketch: str = "centroid"
    max_centroids: int = 64
    chunk_windows: int = 16

    def __post_init__(self) -> None:
        if self.n_shards < 1 or not 0 <= self.shard < self.n_shards:
            raise StreamError(
                f"shard must be in [0, n_shards), got "
                f"{self.shard}/{self.n_shards}"
            )

    def run(self) -> StudyResult:
        """Stream this shard's sessions; snapshot rides in artifacts."""
        from repro.core.configs import edgefabric_topology
        from repro.core.study import StudyResult
        from repro.topology import build_internet
        from repro.workloads import generate_client_prefixes
        from repro.edgefabric.sampler import (
            MeasurementConfig,
            MeasurementPlan,
            plan_measurement,
        )
        from repro.stream.sessions import stream_sessions

        cfg = MeasurementConfig(days=self.days, seed=self.seed + 2)
        with span("study.ingest.topology", seed=self.seed, shard=self.shard):
            internet = build_internet(edgefabric_topology(self.seed))
        with span("study.ingest.workload"):
            prefixes = generate_client_prefixes(
                internet, self.n_prefixes, seed=self.seed + 1
            )
        with span("study.ingest.plan"):
            plan = plan_measurement(internet, prefixes, cfg)
            keep = [
                i
                for i in range(len(plan.pairs))
                if i % self.n_shards == self.shard
            ]
            shard_plan = MeasurementPlan(
                pairs=tuple(plan.pairs[i] for i in keep),
                prefixes=tuple(plan.prefixes[i] for i in keep),
            )
        ingestor = SessionIngestor(
            IngestConfig(
                window_minutes=cfg.window_minutes,
                sketch=self.sketch,
                max_centroids=self.max_centroids,
            )
        )
        with span("study.ingest.stream", shard=self.shard):
            if shard_plan.pairs:
                for batch in stream_sessions(
                    shard_plan, cfg, chunk_windows=self.chunk_windows
                ):
                    ingestor.feed(batch)
        snapshot = ingestor.snapshot()
        summary = {
            "n_pairs": float(len(shard_plan.pairs)),
            "sessions": float(ingestor.sessions),
            "batches": float(ingestor.batches),
            "cells": float(ingestor.n_cells),
            "peak_open_cells": float(ingestor.peak_open_cells),
            "late_dropped": float(ingestor.late_dropped),
        }
        return StudyResult(
            name=f"ingest-shard-{self.shard}-of-{self.n_shards}",
            summary=summary,
            artifacts={SNAPSHOT_ARTIFACT: snapshot.to_dict()},
        )


def merge_snapshot_artifacts(
    results: Sequence[object], key: str = SNAPSHOT_ARTIFACT
) -> IngestSnapshot:
    """Fold shard study results into one merged snapshot.

    Accepts results in campaign order (fresh, cached, or restored from
    a checkpoint — artifacts are identical in all three cases) and
    returns the deterministic merge of their snapshots.
    """
    snapshots = []
    for result in results:
        artifacts = getattr(result, "artifacts", None) or {}
        payload = artifacts.get(key)
        if payload is None:
            raise StreamError(
                f"result {getattr(result, 'name', result)!r} carries no "
                f"{key!r} artifact"
            )
        snapshots.append(IngestSnapshot.from_dict(payload))
    return merge_snapshots(snapshots)
