"""repro.stream — streaming measurement plane with mergeable sketches.

Turns the batch pipelines' O(sessions) memory profile into O(windows):
sessions are folded into one mergeable quantile sketch per
⟨PoP, prefix, route⟩ 15-minute window as they arrive, windows close
behind a watermark, and shard snapshots merge deterministically.

Layering (see ``docs/streaming.md``):

* :mod:`repro.stream.sketch` — P² and centroid (t-digest style)
  quantile sketches: ``update_batch`` / ``merge`` / ``quantile`` /
  canonical JSON.
* :mod:`repro.stream.window` — keyed tumbling windows with
  watermark-based closing and late-data accounting.
* :mod:`repro.stream.ingest` — ``SessionIngestor.feed/snapshot/merge``
  plus the O(sessions) ``ExactIngestor`` parity twin.
* :mod:`repro.stream.sessions` — synthesizes the edge-fabric session
  stream batch-by-batch for the ``repro-bgp ingest`` service mode.
* :mod:`repro.stream.shard` — ingest shards as campaign studies whose
  snapshots survive caching/checkpointing and merge byte-identically.
"""

from repro.stream.sketch import (
    RANK_TOLERANCE,
    SKETCH_KINDS,
    CentroidSketch,
    P2Sketch,
    Sketch,
    make_sketch,
    sketch_from_dict,
    sketch_from_json,
)
from repro.stream.window import WindowSpec, WindowedAggregator
from repro.stream.ingest import (
    ExactIngestor,
    IngestConfig,
    IngestSnapshot,
    Key,
    SessionBatch,
    SessionIngestor,
    merge_snapshots,
)
from repro.stream.sessions import stream_sessions, session_key_table
from repro.stream.shard import (
    SNAPSHOT_ARTIFACT,
    IngestShardStudy,
    merge_snapshot_artifacts,
)

__all__ = [
    "RANK_TOLERANCE",
    "SKETCH_KINDS",
    "CentroidSketch",
    "P2Sketch",
    "Sketch",
    "make_sketch",
    "sketch_from_dict",
    "sketch_from_json",
    "WindowSpec",
    "WindowedAggregator",
    "ExactIngestor",
    "IngestConfig",
    "IngestSnapshot",
    "Key",
    "SessionBatch",
    "SessionIngestor",
    "merge_snapshots",
    "stream_sessions",
    "session_key_table",
    "SNAPSHOT_ARTIFACT",
    "IngestShardStudy",
    "merge_snapshot_artifacts",
]
