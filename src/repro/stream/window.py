"""Keyed 15-minute window aggregation with watermark-based closing.

The streaming analogue of the batch pipelines' windowed-median arrays:
every observation lands in the sketch for its ⟨key, window⟩ cell, where
a window is a fixed-width bucket of simulated time (15 minutes in the
paper's protocol) and the key is whatever the caller groups by
(⟨PoP, prefix, route⟩ for session ingest).

A **watermark** — the maximum simulated time seen so far — drives
window lifecycle: once the watermark passes a window's end plus the
allowed lateness, the window closes.  Closed windows keep their
sketches (memory stays O(windows), that is the point), but new
observations older than the closure horizon are *dropped and counted*
(``late_dropped``, plus a ``stream.window.late_dropped`` telemetry
counter) — the same fate a lost probe meets in the batch lanes.

Everything is deterministic: no wall clock (simulated time only) and
no randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import StreamError
from repro.obs.trace import counter
from repro.stream.sketch import ArrayLike, CentroidSketch, Sketch

#: Watermark floor before any observation arrives.
_NO_WATERMARK = -math.inf

#: Window index lower bound while nothing can have closed yet.
_NO_CLOSED_FLOOR = -(2**62)


@dataclass(frozen=True)
class WindowSpec:
    """Fixed-width tumbling windows over simulated time (hours)."""

    minutes: float = 15.0

    def __post_init__(self) -> None:
        if not self.minutes > 0:
            raise StreamError(
                f"window width must be positive, got {self.minutes}"
            )

    @property
    def hours(self) -> float:
        return self.minutes / 60.0

    def index_of(self, times_h: ArrayLike) -> np.ndarray:
        """Window index per timestamp (vectorized floor division)."""
        times = np.asarray(times_h, dtype=np.float64)
        return np.floor(times / self.hours).astype(np.int64)

    def start_h(self, index: int) -> float:
        return index * self.hours

    def end_h(self, index: int) -> float:
        return (index + 1) * self.hours


class WindowedAggregator:
    """Map ⟨key, window⟩ → sketch, closing windows as the watermark moves.

    Args:
        window_minutes: Tumbling window width.
        sketch_factory: Builds one fresh sketch per cell (defaults to
            :class:`~repro.stream.sketch.CentroidSketch`).
        allowed_lateness_windows: How many whole windows an observation
            may lag the watermark before it is dropped; window *w*
            closes once ``watermark >= end(w) + lateness · width``.
    """

    def __init__(
        self,
        window_minutes: float = 15.0,
        sketch_factory: Optional[Callable[[], Sketch]] = None,
        allowed_lateness_windows: int = 1,
    ) -> None:
        if allowed_lateness_windows < 0:
            raise StreamError(
                "allowed_lateness_windows must be >= 0, got "
                f"{allowed_lateness_windows}"
            )
        self.spec = WindowSpec(window_minutes)
        self.allowed_lateness_windows = int(allowed_lateness_windows)
        self._factory: Callable[[], Sketch] = sketch_factory or CentroidSketch
        self._open: Dict[Tuple[Hashable, int], Sketch] = {}
        self._closed: Dict[Tuple[Hashable, int], Sketch] = {}
        self._newly_closed: List[Tuple[Hashable, int, Sketch]] = []
        self.watermark_h = _NO_WATERMARK
        self.late_dropped = 0
        self.peak_open = 0

    # -- lifecycle ----------------------------------------------------------

    def _min_open_index(self) -> int:
        """Smallest window index still accepting observations."""
        if self.watermark_h == _NO_WATERMARK:
            return _NO_CLOSED_FLOOR
        max_closed = math.floor(
            self.watermark_h / self.spec.hours
            - 1
            - self.allowed_lateness_windows
        )
        return max_closed + 1

    def advance_watermark(self, time_h: float) -> int:
        """Raise the watermark; close windows it has passed.

        Returns the number of windows closed by this advance.  The
        watermark never moves backwards.
        """
        if not math.isfinite(time_h):
            raise StreamError(f"watermark must be finite, got {time_h!r}")
        if time_h <= self.watermark_h:
            return 0
        self.watermark_h = float(time_h)
        min_open = self._min_open_index()
        closing = sorted(
            (cell for cell in self._open if cell[1] < min_open),
            key=lambda cell: (cell[1], repr(cell[0])),
        )
        for cell in closing:
            sketch = self._open.pop(cell)
            self._closed[cell] = sketch
            self._newly_closed.append((cell[0], cell[1], sketch))
        if closing:
            counter("stream.window.closed", len(closing))
        return len(closing)

    def poll_closed(self) -> List[Tuple[Hashable, int, Sketch]]:
        """Windows closed since the last poll, in closure order."""
        out = self._newly_closed
        self._newly_closed = []
        return out

    # -- ingest -------------------------------------------------------------

    def observe(self, key: Hashable, times_h: ArrayLike, values: ArrayLike) -> None:
        """Fold aligned (time, value) samples for one key.

        Samples landing in already-closed windows are dropped and
        counted; everything else updates the cell sketch for its
        window.  The watermark is *not* advanced here — callers decide
        when time moves (typically once per batch).
        """
        times = np.asarray(times_h, dtype=np.float64).ravel()
        vals = np.asarray(values, dtype=np.float64).ravel()
        if times.size != vals.size:
            raise StreamError(
                f"times and values must align, got {times.size} vs {vals.size}"
            )
        if times.size == 0:
            return
        if not np.all(np.isfinite(times)):
            raise StreamError("observation times must be finite")
        idx = self.spec.index_of(times)
        min_open = self._min_open_index()
        late = idx < min_open
        if late.any():
            n_late = int(late.sum())
            self.late_dropped += n_late
            counter("stream.window.late_dropped", n_late)
            keep = ~late
            idx = idx[keep]
            vals = vals[keep]
            if idx.size == 0:
                return
        order = np.argsort(idx, kind="stable")
        idx = idx[order]
        vals = vals[order]
        bounds = np.flatnonzero(np.diff(idx)) + 1
        for widx_chunk, val_chunk in zip(
            np.split(idx, bounds), np.split(vals, bounds)
        ):
            cell = (key, int(widx_chunk[0]))
            sketch = self._open.get(cell)
            if sketch is None:
                sketch = self._closed.get(cell)
            if sketch is None:
                sketch = self._factory()
                self._open[cell] = sketch
            sketch.update_batch(val_chunk)
        self.peak_open = max(self.peak_open, len(self._open))

    def get(self, key: Hashable, window_index: int) -> Optional[Sketch]:
        """The cell sketch (open or closed), or None if absent."""
        cell = (key, int(window_index))
        sketch = self._open.get(cell)
        if sketch is None:
            sketch = self._closed.get(cell)
        return sketch

    def adopt(self, key: Hashable, window_index: int, sketch: Sketch) -> None:
        """Install a sketch for a cell verbatim (used by shard merges).

        Replacing an absent or empty cell with another shard's sketch —
        rather than merging into a fresh sketch, which would recompress
        — is what keeps disjoint-key shard merges byte-identical to a
        single-pass ingest.
        """
        cell = (key, int(window_index))
        if cell in self._closed:
            self._closed[cell] = sketch
        else:
            self._open[cell] = sketch

    # -- inspection ---------------------------------------------------------

    def items(self) -> Iterator[Tuple[Hashable, int, Sketch]]:
        """Every cell — open and closed — in arbitrary order."""
        for (key, widx), sketch in self._open.items():
            yield key, widx, sketch
        for (key, widx), sketch in self._closed.items():
            yield key, widx, sketch

    @property
    def n_open(self) -> int:
        return len(self._open)

    @property
    def n_closed(self) -> int:
        return len(self._closed)

    @property
    def n_cells(self) -> int:
        return len(self._open) + len(self._closed)
