"""Embedded world-cities dataset.

The original studies geolocate clients, PoPs, and vantage points against
real infrastructure; we substitute a curated dataset of ~220 cities
with approximate coordinates and metro populations.  Coordinates are
accurate to well under the ~100 km granularity that matters for the latency
model (1 ms RTT per 100 km), and populations are only used as relative
weights for client placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import AnalysisError
from repro.geo.coords import GeoPoint
from repro.geo.regions import COUNTRY_REGIONS, Region


@dataclass(frozen=True)
class City:
    """A city usable as a location for PoPs, clients, and vantage points.

    Attributes:
        name: Human-readable city name, unique within the dataset.
        country: ISO 3166-1 alpha-2 country code.
        location: Geographic coordinates of the city centre.
        population_m: Approximate metro population, in millions. Used only
            as a relative weight when placing clients.
    """

    name: str
    country: str
    location: GeoPoint
    population_m: float

    @property
    def region(self) -> Region:
        """Continental region of the city's country."""
        return COUNTRY_REGIONS[self.country]

    def distance_km(self, other: "City") -> float:
        """Great-circle distance to another city, in kilometres."""
        return self.location.distance_km(other.location)


def _c(name: str, country: str, lat: float, lon: float, pop: float) -> City:
    return City(name, country, GeoPoint(lat, lon), pop)


#: The dataset.  Grouped by region for readability; order is otherwise
#: insignificant (lookups go through the indexes below).
WORLD_CITIES: Tuple[City, ...] = (
    # --- North America: United States ---
    _c("New York", "US", 40.71, -74.01, 19.8),
    _c("Los Angeles", "US", 34.05, -118.24, 13.2),
    _c("Chicago", "US", 41.88, -87.63, 9.5),
    _c("Dallas", "US", 32.78, -96.80, 7.6),
    _c("Houston", "US", 29.76, -95.37, 7.1),
    _c("Washington", "US", 38.91, -77.04, 6.3),
    _c("Miami", "US", 25.76, -80.19, 6.1),
    _c("Atlanta", "US", 33.75, -84.39, 6.0),
    _c("Boston", "US", 42.36, -71.06, 4.9),
    _c("Phoenix", "US", 33.45, -112.07, 4.9),
    _c("San Francisco", "US", 37.77, -122.42, 4.7),
    _c("Seattle", "US", 47.61, -122.33, 4.0),
    _c("Denver", "US", 39.74, -104.99, 3.0),
    _c("Minneapolis", "US", 44.98, -93.27, 3.7),
    _c("San Diego", "US", 32.72, -117.16, 3.3),
    _c("Council Bluffs", "US", 41.26, -95.86, 1.0),  # Google US-Central area
    _c("Kansas City", "US", 39.10, -94.58, 2.2),
    _c("St. Louis", "US", 38.63, -90.20, 2.8),
    _c("Portland", "US", 45.52, -122.68, 2.5),
    _c("Salt Lake City", "US", 40.76, -111.89, 1.2),
    _c("Ashburn", "US", 39.04, -77.49, 0.5),
    # --- North America: Canada, Mexico, Central America, Caribbean ---
    _c("Toronto", "CA", 43.65, -79.38, 6.4),
    _c("Montreal", "CA", 45.50, -73.57, 4.3),
    _c("Vancouver", "CA", 49.28, -123.12, 2.6),
    _c("Calgary", "CA", 51.05, -114.07, 1.5),
    _c("Mexico City", "MX", 19.43, -99.13, 21.8),
    _c("Guadalajara", "MX", 20.67, -103.35, 5.3),
    _c("Monterrey", "MX", 25.69, -100.32, 5.3),
    _c("Guatemala City", "GT", 14.63, -90.51, 3.0),
    _c("San Jose CR", "CR", 9.93, -84.08, 1.4),
    _c("Panama City", "PA", 8.98, -79.52, 1.9),
    _c("Havana", "CU", 23.11, -82.37, 2.1),
    _c("Santo Domingo", "DO", 18.49, -69.93, 3.3),
    # --- South America ---
    _c("Sao Paulo", "BR", -23.55, -46.63, 22.0),
    _c("Rio de Janeiro", "BR", -22.91, -43.17, 13.5),
    _c("Brasilia", "BR", -15.79, -47.88, 4.7),
    _c("Fortaleza", "BR", -3.73, -38.52, 4.1),
    _c("Porto Alegre", "BR", -30.03, -51.23, 4.3),
    _c("Buenos Aires", "AR", -34.60, -58.38, 15.2),
    _c("Cordoba", "AR", -31.42, -64.18, 1.6),
    _c("Santiago", "CL", -33.45, -70.67, 6.8),
    _c("Bogota", "CO", 4.71, -74.07, 11.0),
    _c("Medellin", "CO", 6.24, -75.58, 4.0),
    _c("Lima", "PE", -12.05, -77.04, 11.0),
    _c("Caracas", "VE", 10.48, -66.90, 2.9),
    _c("Quito", "EC", -0.18, -78.47, 1.9),
    _c("La Paz", "BO", -16.50, -68.15, 1.9),
    _c("Montevideo", "UY", -34.90, -56.16, 1.8),
    _c("Asuncion", "PY", -25.26, -57.58, 2.3),
    # --- Europe ---
    _c("London", "GB", 51.51, -0.13, 14.3),
    _c("Manchester", "GB", 53.48, -2.24, 2.8),
    _c("Paris", "FR", 48.86, 2.35, 12.4),
    _c("Marseille", "FR", 43.30, 5.37, 1.8),
    _c("Frankfurt", "DE", 50.11, 8.68, 2.7),
    _c("Berlin", "DE", 52.52, 13.40, 6.1),
    _c("Munich", "DE", 48.14, 11.58, 2.9),
    _c("Hamburg", "DE", 53.55, 9.99, 3.2),
    _c("Amsterdam", "NL", 52.37, 4.90, 2.5),
    _c("Brussels", "BE", 50.85, 4.35, 2.1),
    _c("Madrid", "ES", 40.42, -3.70, 6.7),
    _c("Barcelona", "ES", 41.39, 2.17, 5.6),
    _c("Lisbon", "PT", 38.72, -9.14, 2.9),
    _c("Milan", "IT", 45.46, 9.19, 4.3),
    _c("Rome", "IT", 41.90, 12.50, 4.3),
    _c("Zurich", "CH", 47.38, 8.54, 1.4),
    _c("Vienna", "AT", 48.21, 16.37, 2.9),
    _c("Warsaw", "PL", 52.23, 21.01, 3.1),
    _c("Prague", "CZ", 50.08, 14.44, 2.7),
    _c("Stockholm", "SE", 59.33, 18.07, 2.4),
    _c("Oslo", "NO", 59.91, 10.75, 1.6),
    _c("Copenhagen", "DK", 55.68, 12.57, 2.1),
    _c("Helsinki", "FI", 60.17, 24.94, 1.5),
    _c("Dublin", "IE", 53.35, -6.26, 2.0),
    _c("Athens", "GR", 37.98, 23.73, 3.6),
    _c("Bucharest", "RO", 44.43, 26.10, 2.3),
    _c("Budapest", "HU", 47.50, 19.04, 3.0),
    _c("Sofia", "BG", 42.70, 23.32, 1.7),
    _c("Kyiv", "UA", 50.45, 30.52, 3.5),
    _c("Moscow", "RU", 55.76, 37.62, 17.1),
    _c("St. Petersburg", "RU", 59.93, 30.34, 5.4),
    _c("Istanbul", "TR", 41.01, 28.98, 15.5),
    _c("Ankara", "TR", 39.93, 32.86, 5.7),
    _c("Belgrade", "RS", 44.79, 20.45, 1.7),
    _c("Zagreb", "HR", 45.81, 15.98, 1.1),
    _c("Bratislava", "SK", 48.15, 17.11, 0.7),
    _c("Vilnius", "LT", 54.69, 25.28, 0.7),
    _c("Riga", "LV", 56.95, 24.11, 0.9),
    _c("Tallinn", "EE", 59.44, 24.75, 0.6),
    # --- Middle East ---
    _c("Dubai", "AE", 25.20, 55.27, 3.5),
    _c("Riyadh", "SA", 24.71, 46.68, 7.7),
    _c("Jeddah", "SA", 21.49, 39.19, 4.7),
    _c("Tel Aviv", "IL", 32.08, 34.78, 4.2),
    _c("Tehran", "IR", 35.69, 51.39, 9.5),
    _c("Baghdad", "IQ", 33.31, 44.37, 7.5),
    _c("Amman", "JO", 31.95, 35.93, 2.2),
    _c("Kuwait City", "KW", 29.38, 47.99, 3.1),
    _c("Doha", "QA", 25.29, 51.53, 2.4),
    _c("Muscat", "OM", 23.59, 58.41, 1.6),
    _c("Beirut", "LB", 33.89, 35.50, 2.4),
    # --- Asia: India ---
    _c("Mumbai", "IN", 19.08, 72.88, 20.7),
    _c("Delhi", "IN", 28.61, 77.21, 31.2),
    _c("Bangalore", "IN", 12.97, 77.59, 12.8),
    _c("Chennai", "IN", 13.08, 80.27, 11.2),
    _c("Hyderabad", "IN", 17.38, 78.49, 10.3),
    _c("Kolkata", "IN", 22.57, 88.36, 14.9),
    _c("Pune", "IN", 18.52, 73.86, 6.8),
    _c("Ahmedabad", "IN", 23.02, 72.57, 8.1),
    # --- Asia: East / Southeast ---
    _c("Tokyo", "JP", 35.68, 139.69, 37.3),
    _c("Osaka", "JP", 34.69, 135.50, 19.0),
    _c("Seoul", "KR", 37.57, 126.98, 25.5),
    _c("Shanghai", "CN", 31.23, 121.47, 27.8),
    _c("Beijing", "CN", 39.90, 116.41, 20.9),
    _c("Shenzhen", "CN", 22.54, 114.06, 12.6),
    _c("Taipei", "TW", 25.03, 121.57, 7.0),
    _c("Hong Kong", "HK", 22.32, 114.17, 7.5),
    _c("Singapore", "SG", 1.35, 103.82, 5.9),
    _c("Kuala Lumpur", "MY", 3.14, 101.69, 8.0),
    _c("Bangkok", "TH", 13.76, 100.50, 10.7),
    _c("Ho Chi Minh City", "VN", 10.82, 106.63, 9.0),
    _c("Hanoi", "VN", 21.03, 105.85, 8.1),
    _c("Manila", "PH", 14.60, 120.98, 13.9),
    _c("Jakarta", "ID", -6.21, 106.85, 10.6),
    _c("Surabaya", "ID", -7.26, 112.75, 3.0),
    _c("Dhaka", "BD", 23.81, 90.41, 21.7),
    _c("Karachi", "PK", 24.86, 67.01, 16.1),
    _c("Lahore", "PK", 31.55, 74.34, 13.1),
    _c("Colombo", "LK", 6.93, 79.85, 2.3),
    _c("Kathmandu", "NP", 27.72, 85.32, 1.5),
    _c("Yangon", "MM", 16.87, 96.20, 5.3),
    _c("Phnom Penh", "KH", 11.56, 104.92, 2.3),
    _c("Almaty", "KZ", 43.24, 76.89, 2.0),
    # --- Oceania ---
    _c("Sydney", "AU", -33.87, 151.21, 5.3),
    _c("Melbourne", "AU", -37.81, 144.96, 5.1),
    _c("Brisbane", "AU", -27.47, 153.03, 2.6),
    _c("Perth", "AU", -31.95, 115.86, 2.1),
    _c("Auckland", "NZ", -36.85, 174.76, 1.7),
    _c("Suva", "FJ", -18.14, 178.44, 0.2),
    _c("Port Moresby", "PG", -9.44, 147.18, 0.4),
    # --- Africa ---
    _c("Johannesburg", "ZA", -26.20, 28.05, 6.0),
    _c("Cape Town", "ZA", -33.92, 18.42, 4.7),
    _c("Lagos", "NG", 6.52, 3.38, 15.4),
    _c("Abuja", "NG", 9.07, 7.40, 3.6),
    _c("Cairo", "EG", 30.04, 31.24, 21.3),
    _c("Alexandria", "EG", 31.20, 29.92, 5.4),
    _c("Nairobi", "KE", -1.29, 36.82, 5.0),
    _c("Casablanca", "MA", 33.57, -7.59, 3.8),
    _c("Accra", "GH", 5.60, -0.19, 2.6),
    _c("Dar es Salaam", "TZ", -6.79, 39.21, 7.0),
    _c("Addis Ababa", "ET", 9.02, 38.75, 5.2),
    _c("Algiers", "DZ", 36.75, 3.06, 2.8),
    _c("Tunis", "TN", 36.81, 10.18, 2.4),
    _c("Dakar", "SN", 14.72, -17.47, 3.3),
    _c("Luanda", "AO", -8.84, 13.23, 8.3),
    # --- expansion set: second-tier metros and additional countries ---
    _c("Philadelphia", "US", 39.95, -75.17, 6.2),
    _c("Detroit", "US", 42.33, -83.05, 4.3),
    _c("Tampa", "US", 27.95, -82.46, 3.2),
    _c("Charlotte", "US", 35.23, -80.84, 2.7),
    _c("Austin", "US", 30.27, -97.74, 2.3),
    _c("Nashville", "US", 36.16, -86.78, 2.0),
    _c("Ottawa", "CA", 45.42, -75.70, 1.4),
    _c("Edmonton", "CA", 53.55, -113.49, 1.4),
    _c("Tijuana", "MX", 32.51, -117.04, 2.2),
    _c("Puebla", "MX", 19.04, -98.20, 3.2),
    _c("Belo Horizonte", "BR", -19.92, -43.94, 6.0),
    _c("Recife", "BR", -8.05, -34.88, 4.1),
    _c("Salvador", "BR", -12.97, -38.50, 3.9),
    _c("Curitiba", "BR", -25.43, -49.27, 3.7),
    _c("Manaus", "BR", -3.10, -60.02, 2.2),
    _c("Rosario", "AR", -32.95, -60.64, 1.5),
    _c("Mendoza", "AR", -32.89, -68.84, 1.0),
    _c("Cali", "CO", 3.45, -76.53, 2.8),
    _c("Birmingham", "GB", 52.48, -1.90, 2.9),
    _c("Glasgow", "GB", 55.86, -4.25, 1.7),
    _c("Lyon", "FR", 45.76, 4.84, 1.7),
    _c("Toulouse", "FR", 43.60, 1.44, 1.0),
    _c("Cologne", "DE", 50.94, 6.96, 1.1),
    _c("Stuttgart", "DE", 48.78, 9.18, 2.8),
    _c("Valencia", "ES", 39.47, -0.38, 1.6),
    _c("Seville", "ES", 37.39, -5.99, 1.5),
    _c("Naples", "IT", 40.85, 14.27, 3.1),
    _c("Turin", "IT", 45.07, 7.69, 1.7),
    _c("Krakow", "PL", 50.06, 19.94, 0.8),
    _c("Novosibirsk", "RU", 55.03, 82.92, 1.6),
    _c("Yekaterinburg", "RU", 56.84, 60.65, 1.5),
    _c("Izmir", "TR", 38.42, 27.14, 3.0),
    _c("Guangzhou", "CN", 23.13, 113.26, 18.7),
    _c("Chengdu", "CN", 30.57, 104.07, 16.3),
    _c("Wuhan", "CN", 30.59, 114.31, 11.2),
    _c("Xi'an", "CN", 34.34, 108.94, 12.9),
    _c("Chongqing", "CN", 29.56, 106.55, 16.4),
    _c("Nagoya", "JP", 35.18, 136.91, 9.4),
    _c("Fukuoka", "JP", 33.59, 130.40, 2.6),
    _c("Sapporo", "JP", 43.06, 141.35, 2.6),
    _c("Busan", "KR", 35.18, 129.08, 3.4),
    _c("Surat", "IN", 21.17, 72.83, 6.9),
    _c("Jaipur", "IN", 26.91, 75.79, 3.9),
    _c("Lucknow", "IN", 26.85, 80.95, 3.5),
    _c("Da Nang", "VN", 16.05, 108.21, 1.2),
    _c("Chiang Mai", "TH", 18.79, 98.98, 1.2),
    _c("Bandung", "ID", -6.92, 107.61, 2.5),
    _c("Medan", "ID", 3.59, 98.67, 2.4),
    _c("Cebu", "PH", 10.32, 123.90, 3.0),
    _c("Islamabad", "PK", 33.68, 73.05, 1.2),
    _c("Tashkent", "UZ", 41.30, 69.24, 2.6),
    _c("Baku", "AZ", 40.41, 49.87, 2.3),
    _c("Adelaide", "AU", -34.93, 138.60, 1.4),
    _c("Wellington", "NZ", -41.29, 174.78, 0.4),
    _c("Christchurch", "NZ", -43.53, 172.64, 0.4),
    _c("Durban", "ZA", -29.86, 31.02, 3.9),
    _c("Pretoria", "ZA", -25.75, 28.19, 2.6),
    _c("Kano", "NG", 12.00, 8.52, 4.1),
    _c("Ibadan", "NG", 7.38, 3.95, 3.6),
    _c("Mombasa", "KE", -4.04, 39.67, 1.2),
    _c("Rabat", "MA", 34.02, -6.84, 1.9),
    _c("Abidjan", "CI", 5.36, -4.01, 5.6),
    _c("Douala", "CM", 4.05, 9.70, 3.9),
    _c("Kampala", "UG", 0.35, 32.58, 3.7),
)

_BY_NAME: Dict[str, City] = {c.name: c for c in WORLD_CITIES}
if len(_BY_NAME) != len(WORLD_CITIES):
    raise RuntimeError("duplicate city names in WORLD_CITIES")

_BY_COUNTRY: Dict[str, List[City]] = {}
for _city in WORLD_CITIES:
    _BY_COUNTRY.setdefault(_city.country, []).append(_city)


def city_named(name: str) -> City:
    """Look up a city by its exact name.

    Raises:
        AnalysisError: if the name is not in the dataset.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise AnalysisError(f"unknown city: {name!r}") from None


def cities_by_country(country: str) -> List[City]:
    """Return all cities in an ISO alpha-2 country, in dataset order.

    Returns an empty list for countries with no cities in the dataset
    rather than raising, so callers can iterate the full country list.
    """
    return list(_BY_COUNTRY.get(country.upper(), ()))
