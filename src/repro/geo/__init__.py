"""Geography substrate: coordinates, distances, cities, and world regions.

Everything in the simulator that produces a latency ultimately bottoms out
in great-circle distances between :class:`~repro.geo.coords.GeoPoint`
locations drawn from the embedded world-cities dataset.
"""

from repro.geo.coords import (
    GeoPoint,
    great_circle_km,
    great_circle_km_matrix,
    propagation_one_way_ms,
    propagation_rtt_ms,
    EARTH_RADIUS_KM,
    FIBER_KM_PER_MS,
)
from repro.geo.cities import City, WORLD_CITIES, cities_by_country, city_named
from repro.geo.regions import (
    Region,
    region_of_country,
    countries_in_region,
    COUNTRY_REGIONS,
)

__all__ = [
    "GeoPoint",
    "great_circle_km",
    "great_circle_km_matrix",
    "propagation_one_way_ms",
    "propagation_rtt_ms",
    "EARTH_RADIUS_KM",
    "FIBER_KM_PER_MS",
    "City",
    "WORLD_CITIES",
    "cities_by_country",
    "city_named",
    "Region",
    "region_of_country",
    "countries_in_region",
    "COUNTRY_REGIONS",
]
