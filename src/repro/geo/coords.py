"""Geographic coordinates and great-circle / propagation-delay math.

The latency model converts geodesic distance into propagation delay using
the standard approximation that light in fiber travels at roughly 2/3 of c,
about 200 km per millisecond one way — equivalently, 1 ms of RTT per
100 km of geodesic distance.  This is the same rule of thumb the paper uses
("within 500 km of the serving PoP, which translates to as little as 5 ms
RTT").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

EARTH_RADIUS_KM = 6371.0088

#: Kilometres covered per millisecond, one way, by light in fiber (~2/3 c).
FIBER_KM_PER_MS = 200.0


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface.

    Attributes:
        lat: Latitude in decimal degrees, positive north, in [-90, 90].
        lon: Longitude in decimal degrees, positive east, in [-180, 180].
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return great_circle_km(self, other)


def great_circle_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres.

    Uses the haversine formula, which is numerically stable for the small
    and antipodal distances that arise in the simulator.
    """
    lat1 = math.radians(a.lat)
    lat2 = math.radians(b.lat)
    dlat = lat2 - lat1
    dlon = math.radians(b.lon - a.lon)
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    # Clamp to [0, 1] to guard against floating-point drift near antipodes.
    h = min(1.0, max(0.0, h))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def great_circle_km_matrix(
    points_a: Sequence[GeoPoint], points_b: Sequence[GeoPoint]
) -> np.ndarray:
    """All pairwise great-circle distances, shape ``(len(a), len(b))``.

    The vectorized counterpart of :func:`great_circle_km` — same
    haversine formula, same antipodal clamp — used by the fast analysis
    lanes to replace per-pair Python loops.  Entries agree with the
    scalar function to floating-point round-off (numpy trig vs
    ``math``); ties between nearly-equidistant points should therefore
    be broken by an explicit secondary key, never by raw equality.
    """
    lat_a = np.radians(np.array([p.lat for p in points_a], dtype=float))
    lon_a = np.radians(np.array([p.lon for p in points_a], dtype=float))
    lat_b = np.radians(np.array([p.lat for p in points_b], dtype=float))
    lon_b = np.radians(np.array([p.lon for p in points_b], dtype=float))
    dlat = lat_b[None, :] - lat_a[:, None]
    dlon = lon_b[None, :] - lon_a[:, None]
    h = (
        np.sin(dlat / 2.0) ** 2
        + np.cos(lat_a)[:, None] * np.cos(lat_b)[None, :] * np.sin(dlon / 2.0) ** 2
    )
    np.clip(h, 0.0, 1.0, out=h)
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(h))


def propagation_one_way_ms(distance_km: float, inflation: float = 1.0) -> float:
    """One-way propagation delay in ms over ``distance_km`` of fiber.

    Args:
        distance_km: Geodesic distance in kilometres. Must be >= 0.
        inflation: Multiplicative path-inflation factor (>= 1) accounting
            for fiber not following the geodesic. 1.0 means a perfectly
            straight run.
    """
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km}")
    if inflation < 1.0:
        raise ValueError(f"inflation must be >= 1, got {inflation}")
    return distance_km * inflation / FIBER_KM_PER_MS


def propagation_rtt_ms(distance_km: float, inflation: float = 1.0) -> float:
    """Round-trip propagation delay in ms over ``distance_km`` of fiber."""
    return 2.0 * propagation_one_way_ms(distance_km, inflation)
