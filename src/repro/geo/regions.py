"""World regions used by the paper's per-region and per-country analyses.

Figure 3 breaks results out for "World", "United States", and "Europe";
Figure 5 reports per-country medians with discussion grouped by continent
(North America, South America, Europe, Middle East, Asia, Oceania, Africa).
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.errors import AnalysisError


class Region(str, enum.Enum):
    """Continental region of a country, following the paper's groupings.

    The Middle East is carved out of Asia because Figure 5's discussion
    treats it separately ("Some countries in the Middle East and South
    America have better performance for Standard Tier").
    """

    NORTH_AMERICA = "north-america"
    SOUTH_AMERICA = "south-america"
    EUROPE = "europe"
    MIDDLE_EAST = "middle-east"
    ASIA = "asia"
    OCEANIA = "oceania"
    AFRICA = "africa"


#: ISO 3166-1 alpha-2 country code -> Region, for every country that appears
#: in the embedded cities dataset.
COUNTRY_REGIONS: Dict[str, Region] = {
    # North America
    "US": Region.NORTH_AMERICA,
    "CA": Region.NORTH_AMERICA,
    "MX": Region.NORTH_AMERICA,
    "GT": Region.NORTH_AMERICA,
    "CR": Region.NORTH_AMERICA,
    "PA": Region.NORTH_AMERICA,
    "CU": Region.NORTH_AMERICA,
    "DO": Region.NORTH_AMERICA,
    # South America
    "BR": Region.SOUTH_AMERICA,
    "AR": Region.SOUTH_AMERICA,
    "CL": Region.SOUTH_AMERICA,
    "CO": Region.SOUTH_AMERICA,
    "PE": Region.SOUTH_AMERICA,
    "VE": Region.SOUTH_AMERICA,
    "EC": Region.SOUTH_AMERICA,
    "BO": Region.SOUTH_AMERICA,
    "UY": Region.SOUTH_AMERICA,
    "PY": Region.SOUTH_AMERICA,
    # Europe
    "GB": Region.EUROPE,
    "FR": Region.EUROPE,
    "DE": Region.EUROPE,
    "NL": Region.EUROPE,
    "BE": Region.EUROPE,
    "ES": Region.EUROPE,
    "PT": Region.EUROPE,
    "IT": Region.EUROPE,
    "CH": Region.EUROPE,
    "AT": Region.EUROPE,
    "PL": Region.EUROPE,
    "CZ": Region.EUROPE,
    "SE": Region.EUROPE,
    "NO": Region.EUROPE,
    "DK": Region.EUROPE,
    "FI": Region.EUROPE,
    "IE": Region.EUROPE,
    "GR": Region.EUROPE,
    "RO": Region.EUROPE,
    "HU": Region.EUROPE,
    "BG": Region.EUROPE,
    "UA": Region.EUROPE,
    "RU": Region.EUROPE,
    "TR": Region.EUROPE,
    "RS": Region.EUROPE,
    "HR": Region.EUROPE,
    "SK": Region.EUROPE,
    "LT": Region.EUROPE,
    "LV": Region.EUROPE,
    "EE": Region.EUROPE,
    # Middle East
    "AE": Region.MIDDLE_EAST,
    "SA": Region.MIDDLE_EAST,
    "IL": Region.MIDDLE_EAST,
    "IR": Region.MIDDLE_EAST,
    "IQ": Region.MIDDLE_EAST,
    "JO": Region.MIDDLE_EAST,
    "KW": Region.MIDDLE_EAST,
    "QA": Region.MIDDLE_EAST,
    "OM": Region.MIDDLE_EAST,
    "LB": Region.MIDDLE_EAST,
    # Asia
    "IN": Region.ASIA,
    "CN": Region.ASIA,
    "JP": Region.ASIA,
    "KR": Region.ASIA,
    "TW": Region.ASIA,
    "HK": Region.ASIA,
    "SG": Region.ASIA,
    "MY": Region.ASIA,
    "TH": Region.ASIA,
    "VN": Region.ASIA,
    "PH": Region.ASIA,
    "ID": Region.ASIA,
    "BD": Region.ASIA,
    "PK": Region.ASIA,
    "LK": Region.ASIA,
    "NP": Region.ASIA,
    "MM": Region.ASIA,
    "KH": Region.ASIA,
    "KZ": Region.ASIA,
    "UZ": Region.ASIA,
    "AZ": Region.ASIA,
    # Oceania
    "AU": Region.OCEANIA,
    "NZ": Region.OCEANIA,
    "FJ": Region.OCEANIA,
    "PG": Region.OCEANIA,
    # Africa
    "ZA": Region.AFRICA,
    "NG": Region.AFRICA,
    "EG": Region.AFRICA,
    "KE": Region.AFRICA,
    "MA": Region.AFRICA,
    "GH": Region.AFRICA,
    "TZ": Region.AFRICA,
    "ET": Region.AFRICA,
    "DZ": Region.AFRICA,
    "TN": Region.AFRICA,
    "SN": Region.AFRICA,
    "AO": Region.AFRICA,
    "CI": Region.AFRICA,
    "CM": Region.AFRICA,
    "UG": Region.AFRICA,
}


def region_of_country(country: str) -> Region:
    """Return the :class:`Region` for an ISO alpha-2 country code.

    Raises:
        AnalysisError: if the country code is unknown.
    """
    try:
        return COUNTRY_REGIONS[country.upper()]
    except KeyError:
        raise AnalysisError(f"unknown country code: {country!r}") from None


def countries_in_region(region: Region) -> List[str]:
    """Return all country codes mapped to ``region``, sorted."""
    return sorted(c for c, r in COUNTRY_REGIONS.items() if r is region)
