"""Live campaign progress: heartbeat folding, EWMA rate, ETA, status line.

The push half lives in the event stream — ``heartbeat`` events (schema
v2) emitted by the campaign runner as jobs complete.  The pull half is
:class:`ProgressTracker`: a thread-safe accumulator the runner feeds on
every job outcome, which maintains an exponentially-weighted job rate
and an ETA, mirrors each update into the stream as a heartbeat event,
and optionally renders a status line.

Rendering is TTY-aware: on a terminal the line redraws in place
(carriage return, padded); on a pipe it degrades to occasional full
lines throttled by ``min_interval_s``, so redirecting stderr to a log
file yields a readable tail instead of a mile of ``\\r``.

All timing uses the monotonic clock (``time.perf_counter``); the
tracker never reads wall-clock time.
"""

from __future__ import annotations

import time
from threading import Lock
from typing import Any, Dict, IO, Optional

from repro.errors import ObsError
from repro.obs import trace as obs

#: Single heartbeat stream name used by the campaign runner.
HEARTBEAT_NAME = "runner.progress"


class ProgressTracker:
    """Thread-safe campaign progress accumulator and status-line renderer.

    Args:
        total: Expected job count (settable later via :meth:`set_total`;
            0 means unknown, which disables the ETA and percent).
        stream: Where to render the status line (conventionally
            ``sys.stderr``); ``None`` tracks silently.
        min_interval_s: Minimum seconds between renders on a non-TTY
            stream (TTY redraws are cheap and uncapped).
        ewma_alpha: Smoothing factor of the job-rate EWMA in (0, 1];
            higher reacts faster, lower smooths more.
    """

    def __init__(
        self,
        total: int = 0,
        stream: Optional[IO[str]] = None,
        min_interval_s: float = 0.5,
        ewma_alpha: float = 0.25,
    ):
        if total < 0:
            raise ObsError(f"total must be >= 0, got {total}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ObsError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}"
            )
        self._lock = Lock()
        self.total = int(total)
        self.done = 0
        self.failed = 0
        self.retried = 0
        self.hits = 0
        self._stream = stream
        self._tty = bool(stream is not None and stream.isatty())
        self._min_interval_s = float(min_interval_s)
        self._ewma_alpha = float(ewma_alpha)
        self._rate: Optional[float] = None
        self._start = time.perf_counter()
        self._last_done = self._start
        self._last_render = -float("inf")
        self._last_width = 0

    # -- accounting ---------------------------------------------------------

    def set_total(self, total: int) -> None:
        """Declare (or correct) the expected job count."""
        if total < 0:
            raise ObsError(f"total must be >= 0, got {total}")
        with self._lock:
            self.total = int(total)

    def job_done(self, status: str = "ran") -> None:
        """Record one finished job (``"ran"``, ``"hit"``, or ``"failed"``).

        Updates the rate EWMA, mirrors a heartbeat event into the
        ambient trace (a no-op when tracing is off), and renders.
        """
        if status not in ("ran", "hit", "failed"):
            raise ObsError(f"unknown job status {status!r}")
        with self._lock:
            now = time.perf_counter()
            self.done += 1
            if status == "failed":
                self.failed += 1
            elif status == "hit":
                self.hits += 1
            gap = now - self._last_done
            self._last_done = now
            if gap > 0:
                instant = 1.0 / gap
                if self._rate is None:
                    self._rate = instant
                else:
                    alpha = self._ewma_alpha
                    self._rate = alpha * instant + (1.0 - alpha) * self._rate
            snap = self._snapshot_locked(now)
        obs.heartbeat(HEARTBEAT_NAME, **snap)
        self._maybe_render(snap)

    def retry(self) -> None:
        """Record one retry attempt."""
        with self._lock:
            self.retried += 1

    # -- reading ------------------------------------------------------------

    def _snapshot_locked(self, now: float) -> Dict[str, Any]:
        remaining = max(0, self.total - self.done) if self.total else 0
        rate = self._rate if self._rate is not None else 0.0
        eta_s = (remaining / rate) if (remaining and rate > 0) else 0.0
        return {
            "done": self.done,
            "total": self.total,
            "failed": self.failed,
            "retried": self.retried,
            "hits": self.hits,
            "rate": rate,
            "eta_s": eta_s,
            "elapsed_s": now - self._start,
        }

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time progress counters, rate, ETA, and elapsed time."""
        with self._lock:
            return self._snapshot_locked(time.perf_counter())

    # -- rendering ----------------------------------------------------------

    @staticmethod
    def format_line(snap: Dict[str, Any]) -> str:
        """One status line from a snapshot (also used by tests)."""
        done, total = snap["done"], snap["total"]
        if total:
            pct = 100.0 * done / total if total else 0.0
            head = f"campaign {done}/{total} ({pct:.0f}%)"
        else:
            head = f"campaign {done} job(s)"
        bits = [head]
        if snap["hits"]:
            bits.append(f"{snap['hits']} hit(s)")
        if snap["failed"]:
            bits.append(f"{snap['failed']} failed")
        if snap["retried"]:
            bits.append(f"{snap['retried']} retried")
        if snap["rate"] > 0:
            bits.append(f"{snap['rate']:.2f} job/s")
        if snap["eta_s"] > 0:
            bits.append(f"eta {snap['eta_s']:.0f}s")
        return " — ".join(bits)

    def _maybe_render(self, snap: Dict[str, Any]) -> None:
        stream = self._stream
        if stream is None:
            return
        with self._lock:
            now = time.perf_counter()
            if not self._tty and now - self._last_render < self._min_interval_s:
                return
            self._last_render = now
            line = self.format_line(snap)
            try:
                if self._tty:
                    pad = max(0, self._last_width - len(line))
                    stream.write("\r" + line + " " * pad)
                    self._last_width = len(line)
                else:
                    stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                # A closed or broken status stream must never take the
                # campaign down; progress goes silent instead.
                self._stream = None

    def finish(self) -> None:
        """Render the final line unconditionally and release the stream."""
        snap = self.snapshot()
        stream = self._stream
        if stream is None:
            return
        with self._lock:
            line = self.format_line(snap)
            try:
                if self._tty:
                    pad = max(0, self._last_width - len(line))
                    stream.write("\r" + line + " " * pad + "\n")
                else:
                    stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass
            self._stream = None


def fold_heartbeats(events) -> Dict[str, Any]:
    """Summarize the heartbeat events of a recorded stream.

    Returns the last heartbeat's fields (the most recent view of
    progress) plus ``n_heartbeats``; an empty dict when the stream has
    none.  Lets ``trace summarize`` and offline tooling reconstruct
    campaign progress after the fact.
    """
    last: Dict[str, Any] = {}
    count = 0
    for event in events:
        if event.get("kind") != "heartbeat":
            continue
        count += 1
        last = {
            key: value
            for key, value in event.items()
            if key not in ("v", "run", "ts", "kind", "name", "pid")
        }
    if not count:
        return {}
    last["n_heartbeats"] = count
    return last
