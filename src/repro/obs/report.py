"""Aggregate a telemetry event stream into human-readable summaries.

The per-phase timing table is the payoff of the whole subsystem: given
a JSONL stream (from ``--trace-out`` or a merged campaign), it answers
*where the time went* — per span name: how often it ran, total and
distribution of durations — plus counter tallies and gauge last-values.
Rendered through :func:`repro.analysis.format_table` so it matches the
rest of the package's terminal output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

import numpy as np

from repro.analysis import format_table
from repro.errors import ObsError
from repro.obs.events import decode_line

PathLike = Union[str, Path]


@dataclass(frozen=True)
class SpanStats:
    """Timing distribution of one span name across a stream."""

    name: str
    count: int
    total_s: float
    p50_ms: float
    p95_ms: float
    max_ms: float
    errors: int = 0


@dataclass(frozen=True)
class TraceSummary:
    """Aggregated view of one event stream.

    Attributes:
        n_events: Total events aggregated.
        run_ids: Distinct run ids seen (one, unless streams were
            concatenated).
        pids: Distinct emitting processes — >1 proves worker spans
            crossed the process boundary.
        n_replayed: Events tagged as cache-hit replays.
        spans: Per-name timing stats, largest total first.
        counters: Per-name summed counter values.
        gauges: Per-name last-written gauge values.
        n_unclosed: span_start events with no matching span_end (a
            crashed or still-open phase).
        histograms: Per-name distribution summaries (count, min, max,
            mean, p50/p95/p99) folded from ``hist`` events — same-name
            sketches from partial flushes and worker shards merge.
        n_heartbeats: Live-progress pulses seen in the stream.
    """

    n_events: int
    run_ids: Tuple[str, ...]
    pids: Tuple[int, ...]
    n_replayed: int
    spans: Tuple[SpanStats, ...]
    counters: Mapping[str, float]
    gauges: Mapping[str, float]
    n_unclosed: int = 0
    histograms: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    n_heartbeats: int = 0

    def render(self) -> str:
        """Headline plus per-phase timing table (and counters, if any)."""
        headline = (
            f"trace: {self.n_events} events, {len(self.run_ids)} run(s), "
            f"{len(self.pids)} process(es), {self.n_replayed} replayed"
        )
        if self.n_unclosed:
            headline += f", {self.n_unclosed} unclosed span(s)"
        if self.n_heartbeats:
            headline += f", {self.n_heartbeats} heartbeat(s)"
        parts = [headline]
        if self.spans:
            rows = [
                [
                    s.name,
                    s.count,
                    s.total_s,
                    s.p50_ms,
                    s.p95_ms,
                    s.max_ms,
                ]
                for s in self.spans
            ]
            parts.append(
                format_table(
                    ["phase", "count", "total_s", "p50_ms", "p95_ms", "max_ms"],
                    rows,
                    float_fmt="{:.3f}",
                )
            )
        if self.counters:
            rows = [
                [name, self.counters[name]] for name in sorted(self.counters)
            ]
            parts.append(format_table(["counter", "total"], rows, float_fmt="{:.6g}"))
        if self.gauges:
            rows = [[name, self.gauges[name]] for name in sorted(self.gauges)]
            parts.append(format_table(["gauge", "last"], rows, float_fmt="{:.6g}"))
        if self.histograms:
            rows = [
                [
                    name,
                    summary.get("count", 0),
                    summary.get("p50"),
                    summary.get("p95"),
                    summary.get("p99"),
                    summary.get("max"),
                ]
                for name, summary in sorted(self.histograms.items())
            ]
            parts.append(
                format_table(
                    ["histogram", "count", "p50", "p95", "p99", "max"],
                    rows,
                    float_fmt="{:.6g}",
                )
            )
        return "\n\n".join(parts)


def summarize_events(events: Iterable[Mapping[str, Any]]) -> TraceSummary:
    """Fold an event stream into a :class:`TraceSummary`.

    Tolerates streams with only some event kinds; durations come from
    ``span_end`` events alone, so a truncated stream (missing ends)
    surfaces as ``n_unclosed`` rather than skewed timings.
    """
    durations: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    run_ids: List[str] = []
    pids: List[int] = []
    opened: Dict[Tuple[int, Any], str] = {}
    hist_events: List[Mapping[str, Any]] = []
    n_events = 0
    n_replayed = 0
    n_heartbeats = 0
    for event in events:
        n_events += 1
        run = event.get("run")
        if run not in run_ids:
            run_ids.append(run)
        pid = event.get("pid")
        if pid not in pids:
            pids.append(pid)
        if event.get("replay"):
            n_replayed += 1
        kind = event.get("kind")
        name = event.get("name", "")
        if kind == "span_start":
            opened[(pid, event.get("span"))] = name
        elif kind == "span_end":
            opened.pop((pid, event.get("span")), None)
            durations.setdefault(name, []).append(float(event.get("dur_s", 0.0)))
            if "error" in event:
                errors[name] = errors.get(name, 0) + 1
        elif kind == "counter":
            counters[name] = counters.get(name, 0.0) + float(event.get("value", 0.0))
        elif kind == "gauge":
            gauges[name] = float(event.get("value", 0.0))
        elif kind == "hist":
            hist_events.append(event)
        elif kind == "heartbeat":
            n_heartbeats += 1
    span_stats = []
    for name, values in durations.items():
        arr = np.asarray(values, dtype=float)
        span_stats.append(
            SpanStats(
                name=name,
                count=int(arr.size),
                total_s=float(arr.sum()),
                p50_ms=float(np.percentile(arr, 50) * 1e3),
                p95_ms=float(np.percentile(arr, 95) * 1e3),
                max_ms=float(arr.max() * 1e3),
                errors=errors.get(name, 0),
            )
        )
    span_stats.sort(key=lambda s: (-s.total_s, s.name))
    histograms: Dict[str, Mapping[str, Any]] = {}
    if hist_events:
        from repro.obs.metrics import merge_hist_events

        histograms = {
            name: hist.summary()
            for name, hist in merge_hist_events(hist_events).items()
        }
    return TraceSummary(
        n_events=n_events,
        run_ids=tuple(run_ids),
        pids=tuple(pids),
        n_replayed=n_replayed,
        spans=tuple(span_stats),
        counters=counters,
        gauges=gauges,
        n_unclosed=len(opened),
        histograms=histograms,
        n_heartbeats=n_heartbeats,
    )


def load_events(path: PathLike) -> List[Dict[str, Any]]:
    """Read and validate a JSONL event stream from disk.

    Raises:
        ObsError: On an unreadable file or any schema-violating line,
            naming the offending line number.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ObsError(f"cannot read event stream {path}: {exc}") from exc
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            events.append(decode_line(line))
        except ObsError as exc:
            raise ObsError(f"{path}:{lineno}: {exc}") from exc
    return events


def summarize_file(path: PathLike) -> TraceSummary:
    """Convenience: :func:`load_events` then :func:`summarize_events`."""
    return summarize_events(load_events(path))
