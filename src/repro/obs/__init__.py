"""repro.obs — structured telemetry for the reproduction pipelines.

The paper's argument is about *where latency comes from*; this package
is about where our own time goes while reproducing it.  Four pieces:

* :mod:`repro.obs.events` — the versioned JSONL event schema (span
  start/end, counter, gauge, log) shared by every producer and
  consumer, in-process or across the campaign worker boundary.
* :mod:`repro.obs.trace` — the collection API: ``span()`` context
  manager, ``traced()`` decorator, ``counter()``/``gauge()``, with a
  single ``is None`` fast path when tracing is disabled.
* :mod:`repro.obs.manifest` — run manifests (config hash, seeds, git
  revision, interpreter, wall time) written alongside results.
* :mod:`repro.obs.report` — aggregation of an event stream into the
  per-phase timing table behind ``repro-bgp trace summarize``.
* :mod:`repro.obs.metrics` — sketch-backed :class:`Histogram`
  distributions (p50/p95/p99 without raw samples) riding the event
  schema as ``hist`` events.
* :mod:`repro.obs.profile` — span-tree reconstruction: self vs.
  cumulative time, collapsed-stack flamegraph export, and campaign
  critical-path analysis (``repro-bgp trace profile|flame|critical``).
* :mod:`repro.obs.progress` — heartbeat events folded into a live,
  TTY-aware campaign status line (``repro-bgp campaign --progress``).

Typical library use::

    from repro import obs

    obs.enable()
    with obs.span("my.phase"):
        ...
    obs.write_jsonl("trace.jsonl")
    obs.disable()

See ``docs/observability.md`` for the full walkthrough.
"""

import importlib

from repro.obs.events import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    decode_line,
    encode_line,
    make_event,
    new_run_id,
    validate_event,
)
from repro.obs.trace import (
    Captured,
    TraceLogHandler,
    Tracer,
    capture,
    counter,
    current_run_id,
    disable,
    enable,
    events,
    flush_histograms,
    gauge,
    heartbeat,
    histogram,
    ingest,
    is_enabled,
    log_event,
    span,
    suspended,
    traced,
    write_jsonl,
)

# The manifest and report halves pull in repro.io / repro.analysis,
# which sit *above* the instrumented layers (topology, netmodel) in the
# import graph.  Loading them eagerly here would close an import cycle
# the moment any instrumented module does `from repro.obs.trace import
# span` (importing a submodule initializes its package).  They are
# resolved lazily instead (PEP 562), so the hot-path half of the
# package stays dependency-free.
_LAZY = {
    "MANIFEST_KIND": "repro.obs.manifest",
    "RunManifest": "repro.obs.manifest",
    "collect_manifest": "repro.obs.manifest",
    "config_digest": "repro.obs.manifest",
    "git_revision": "repro.obs.manifest",
    "read_manifest": "repro.obs.manifest",
    "write_manifest": "repro.obs.manifest",
    "SpanStats": "repro.obs.report",
    "TraceSummary": "repro.obs.report",
    "load_events": "repro.obs.report",
    "summarize_events": "repro.obs.report",
    "summarize_file": "repro.obs.report",
    "Histogram": "repro.obs.metrics",
    "merge_hist_events": "repro.obs.metrics",
    "quantile_table": "repro.obs.metrics",
    "CriticalPath": "repro.obs.profile",
    "Profile": "repro.obs.profile",
    "SpanForest": "repro.obs.profile",
    "SpanNode": "repro.obs.profile",
    "build_forest": "repro.obs.profile",
    "collapsed_stacks": "repro.obs.profile",
    "critical_path": "repro.obs.profile",
    "parse_collapsed": "repro.obs.profile",
    "profile_events": "repro.obs.profile",
    "profile_forest": "repro.obs.profile",
    "ProgressTracker": "repro.obs.progress",
    "fold_heartbeats": "repro.obs.progress",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

__all__ = [
    # events
    "EVENT_KINDS",
    "SCHEMA_VERSION",
    "decode_line",
    "encode_line",
    "make_event",
    "new_run_id",
    "validate_event",
    # trace
    "Captured",
    "TraceLogHandler",
    "Tracer",
    "capture",
    "counter",
    "current_run_id",
    "disable",
    "enable",
    "events",
    "flush_histograms",
    "gauge",
    "heartbeat",
    "histogram",
    "ingest",
    "is_enabled",
    "log_event",
    "span",
    "suspended",
    "traced",
    "write_jsonl",
    # manifest
    "MANIFEST_KIND",
    "RunManifest",
    "collect_manifest",
    "config_digest",
    "git_revision",
    "read_manifest",
    "write_manifest",
    # report
    "SpanStats",
    "TraceSummary",
    "load_events",
    "summarize_events",
    "summarize_file",
    # metrics
    "Histogram",
    "merge_hist_events",
    "quantile_table",
    # profile
    "CriticalPath",
    "Profile",
    "SpanForest",
    "SpanNode",
    "build_forest",
    "collapsed_stacks",
    "critical_path",
    "parse_collapsed",
    "profile_events",
    "profile_forest",
    # progress
    "ProgressTracker",
    "fold_heartbeats",
]
