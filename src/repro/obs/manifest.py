"""Run manifests: the provenance record written alongside results.

A manifest answers "what exactly produced this artifact?" — the run id
tying it to a trace stream, the content hash of the configuration, the
seeds, the git revision, and the interpreter/platform — so a result
file found on disk months later can be traced back to a reproducible
invocation.  Serialized with the package-wide versioned-header
convention (:func:`repro.io.make_header`), like the result cache and
dataset archives.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform as _platform
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import AnalysisError, ObsError
from repro.io import check_header, make_header

PathLike = Union[str, Path]

#: Header ``kind`` for manifest documents.
MANIFEST_KIND = "run-manifest"


def git_revision(cwd: Optional[PathLike] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a checkout.

    Never raises: provenance collection must not be able to fail a run.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    rev = proc.stdout.strip()
    return rev or None


def config_digest(config: Mapping[str, Any]) -> str:
    """Deterministic sha256 over a JSON-able configuration mapping.

    Uses the campaign runner's canonical form so a manifest's config
    hash and a :class:`~repro.runner.spec.JobSpec` content hash agree
    on what "the same configuration" means.
    """
    from repro.runner.spec import canonicalize

    encoded = json.dumps(
        canonicalize(dict(config)),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one run.

    Attributes:
        run_id: Ties the manifest to its trace stream's ``run`` field.
        created_utc: Wall-clock creation time, ISO-8601 UTC.
        git_rev: Commit hash of the working tree, when discoverable.
        python: Interpreter version string.
        platform: OS/architecture identifier.
        argv: The invoking command line (empty for library use).
        config: The flat run configuration that was hashed.
        config_hash: sha256 over the canonicalized config.
        seeds: Every randomness seed involved in the run.
        wall_s: Total wall time of the run in seconds.
        extra: Free-form caller additions (JSON scalars only).
    """

    run_id: str
    created_utc: str
    git_rev: Optional[str]
    python: str
    platform: str
    argv: Tuple[str, ...] = ()
    config: Mapping[str, Any] = field(default_factory=dict)
    config_hash: str = ""
    seeds: Tuple[int, ...] = ()
    wall_s: float = 0.0
    extra: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (tuples become lists)."""
        data = dataclasses.asdict(self)
        data["argv"] = list(self.argv)
        data["seeds"] = [int(s) for s in self.seeds]
        data["config"] = dict(self.config)
        data["extra"] = dict(self.extra)
        return data


def collect_manifest(
    run_id: str,
    *,
    config: Optional[Mapping[str, Any]] = None,
    seeds: Sequence[int] = (),
    argv: Optional[Sequence[str]] = None,
    wall_s: float = 0.0,
    extra: Optional[Mapping[str, Any]] = None,
) -> RunManifest:
    """Gather environment provenance into a :class:`RunManifest`."""
    config = dict(config or {})
    return RunManifest(
        run_id=run_id,
        created_utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        git_rev=git_revision(),
        python=sys.version.split()[0],
        platform=_platform.platform(),
        argv=tuple(argv if argv is not None else sys.argv),
        config=config,
        config_hash=config_digest(config),
        seeds=tuple(int(s) for s in seeds),
        wall_s=float(wall_s),
        extra=dict(extra or {}),
    )


def write_manifest(manifest: RunManifest, path: PathLike) -> Path:
    """Persist a manifest as versioned-header JSON; returns the path."""
    document = make_header(MANIFEST_KIND, manifest=manifest.to_dict())
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True), encoding="utf-8"
    )
    return path


def read_manifest(path: PathLike) -> RunManifest:
    """Load a manifest written by :func:`write_manifest`.

    Raises:
        ObsError: On unreadable files, foreign schemas, or missing
            fields — unlike the result cache, a manifest is asked for
            by name, so silence would hide real corruption.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
        check_header(document, MANIFEST_KIND)
        data = document["manifest"]
        return RunManifest(
            run_id=data["run_id"],
            created_utc=data["created_utc"],
            git_rev=data.get("git_rev"),
            python=data["python"],
            platform=data["platform"],
            argv=tuple(data.get("argv", ())),
            config=dict(data.get("config", {})),
            config_hash=data.get("config_hash", ""),
            seeds=tuple(int(s) for s in data.get("seeds", ())),
            wall_s=float(data.get("wall_s", 0.0)),
            extra=dict(data.get("extra", {})),
        )
    except (AnalysisError, OSError, ValueError, KeyError, TypeError) as exc:
        raise ObsError(f"cannot read run manifest {path}: {exc}") from exc
