"""Versioned JSONL event schema for the telemetry stream.

Every telemetry record — span boundaries, counters, gauges, forwarded
log lines — is one flat JSON object per line, carrying the same four
leading fields:

* ``v`` — schema version (:data:`SCHEMA_VERSION`), so a reader can
  reject streams written by a different generation before touching the
  payload, mirroring the header convention of :func:`repro.io.make_header`.
* ``run`` — the ``run_id`` tying every event of one invocation together,
  including events recorded inside worker processes.
* ``ts`` — a monotonic timestamp (``time.perf_counter()``), so event
  ordering within one process never goes backwards under clock
  adjustments.  Monotonic clocks have per-process origins; durations
  (``dur_s``) are the cross-process currency, not raw timestamps.
* ``pid`` — the emitting process, which is how a merged campaign stream
  distinguishes worker-side spans from the orchestrator's.

Kind-specific required fields are listed in :data:`REQUIRED_FIELDS`;
:func:`validate_event` enforces the whole contract and is what the CI
smoke step and ``repro-bgp trace summarize`` run over every line.
"""

from __future__ import annotations

import json
import os
import uuid
from typing import Any, Dict, Mapping

from repro.errors import ObsError

#: Bumped whenever the event contract changes incompatibly.
#: v2 added the ``hist`` (sketch-backed distribution snapshot) and
#: ``heartbeat`` (live progress) kinds.
SCHEMA_VERSION = 2

#: The closed set of event kinds.
EVENT_KINDS = frozenset(
    {"span_start", "span_end", "counter", "gauge", "log", "hist", "heartbeat"}
)

#: Kind-specific required fields (beyond the common v/run/ts/kind/name/pid).
REQUIRED_FIELDS: Mapping[str, tuple] = {
    "span_start": ("span",),
    "span_end": ("span", "dur_s"),
    "counter": ("value",),
    "gauge": ("value",),
    "log": ("level", "msg"),
    "hist": ("sketch",),
    "heartbeat": ("done",),
}


def new_run_id() -> str:
    """A fresh 12-hex-char run identifier."""
    return uuid.uuid4().hex[:12]


def make_event(
    kind: str, name: str, run_id: str, ts: float, **fields: Any
) -> Dict[str, Any]:
    """Assemble one schema-conformant event dict.

    The emitting process id is stamped automatically; extra keyword
    fields (span ids, values, attributes) ride along flat.
    """
    event: Dict[str, Any] = {
        "v": SCHEMA_VERSION,
        "run": run_id,
        "ts": float(ts),
        "kind": kind,
        "name": name,
        "pid": os.getpid(),
    }
    event.update(fields)
    return event


def validate_event(event: Any) -> Dict[str, Any]:
    """Check one event against the schema; return it unchanged.

    Raises:
        ObsError: On anything malformed — wrong container type, foreign
            schema version, unknown kind, or a missing/ill-typed field.
    """
    if not isinstance(event, dict):
        raise ObsError(f"event must be a JSON object, got {type(event).__name__}")
    version = event.get("v")
    if version != SCHEMA_VERSION:
        raise ObsError(
            f"event schema version {version!r} is not the supported "
            f"{SCHEMA_VERSION}"
        )
    kind = event.get("kind")
    if kind not in EVENT_KINDS:
        raise ObsError(f"unknown event kind {kind!r}")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        raise ObsError(f"event name must be a non-empty string, got {name!r}")
    run = event.get("run")
    if not isinstance(run, str) or not run:
        raise ObsError(f"event run id must be a non-empty string, got {run!r}")
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        raise ObsError(f"event ts must be a number, got {ts!r}")
    pid = event.get("pid")
    if not isinstance(pid, int) or isinstance(pid, bool):
        raise ObsError(f"event pid must be an integer, got {pid!r}")
    for field in REQUIRED_FIELDS[kind]:
        if field not in event:
            raise ObsError(f"{kind} event {name!r} is missing field {field!r}")
    if kind == "span_end":
        dur = event["dur_s"]
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
            raise ObsError(
                f"span_end {name!r} dur_s must be a non-negative number, "
                f"got {dur!r}"
            )
    if kind in ("counter", "gauge"):
        value = event["value"]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ObsError(f"{kind} {name!r} value must be a number, got {value!r}")
    if kind == "log":
        if not isinstance(event["level"], str) or not isinstance(event["msg"], str):
            raise ObsError(f"log event {name!r} needs string level and msg")
    if kind == "hist":
        sketch = event["sketch"]
        if not isinstance(sketch, dict) or not isinstance(
            sketch.get("kind"), str
        ):
            raise ObsError(
                f"hist event {name!r} sketch must be a serialized sketch "
                f"object with a 'kind' tag, got {type(sketch).__name__}"
            )
    if kind == "heartbeat":
        done = event["done"]
        if not isinstance(done, (int, float)) or isinstance(done, bool):
            raise ObsError(
                f"heartbeat {name!r} done must be a number, got {done!r}"
            )
    return event


def encode_line(event: Mapping[str, Any]) -> str:
    """Serialize one event to its JSONL line (no trailing newline)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def decode_line(line: str) -> Dict[str, Any]:
    """Parse and validate one JSONL line.

    Raises:
        ObsError: On invalid JSON or a schema violation.
    """
    try:
        event = json.loads(line)
    except (json.JSONDecodeError, ValueError) as exc:
        raise ObsError(f"event line is not valid JSON: {exc}") from exc
    return validate_event(event)
