"""Distribution metrics for the telemetry stream: sketch-backed histograms.

Counters and gauges (:mod:`repro.obs.trace`) cover tallies and
point-in-time readings; this module adds the third shape — a
*distribution* — without storing raw samples.  A :class:`Histogram`
folds observations into a :class:`repro.stream.sketch.CentroidSketch`
(bounded memory, mergeable, canonical-JSON serializable), so hot call
sites like per-job latency or retry backoff get p50/p95/p99 at constant
cost per sample.

Histograms ride the event schema as ``hist`` events (schema v2): one
event per flush carrying the serialized sketch plus the running sum,
emitted by ``Tracer.flush_histograms``.  Because sketches merge, a
stream may legally contain several ``hist`` events for the same name —
partial flushes from the orchestrator and from each worker process —
and readers fold them back together with :func:`merge_hist_events`.

The import direction matters: :mod:`repro.obs.trace` must stay
importable before :mod:`repro.stream` (the instrumented measurement
modules import ``trace`` at module scope), so ``trace`` pulls this
module lazily at the first ``histogram()`` call, never at import time.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ObsError
from repro.obs.events import make_event
from repro.stream.sketch import CentroidSketch, sketch_from_dict

#: Quantiles reported by default in summaries and CLI tables.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

#: Centroid budget for telemetry histograms.  Small on purpose: a hist
#: event is one JSONL line, and RANK_TOLERANCE already bounds the
#: rank-space error at this resolution.
DEFAULT_MAX_CENTROIDS = 64


class Histogram:
    """A named distribution backed by a mergeable centroid sketch.

    Not thread-safe by itself — the owning ``Tracer`` serializes
    ``observe`` calls under its buffer lock.

    Args:
        name: Metric name; the aggregation key across processes.
        max_centroids: Sketch resolution (see
            :class:`repro.stream.sketch.CentroidSketch`).
    """

    __slots__ = ("name", "sum", "_sketch")

    def __init__(self, name: str, max_centroids: int = DEFAULT_MAX_CENTROIDS):
        if not isinstance(name, str) or not name:
            raise ObsError(f"histogram name must be a non-empty string, got {name!r}")
        self.name = name
        self.sum = 0.0
        self._sketch = CentroidSketch(max_centroids=max_centroids)

    @property
    def count(self) -> int:
        """Number of observed samples."""
        return self._sketch.count

    @property
    def min(self) -> Optional[float]:
        """Smallest observed sample, ``None`` while empty."""
        return None if self._sketch.count == 0 else self._sketch._min

    @property
    def max(self) -> Optional[float]:
        """Largest observed sample, ``None`` while empty."""
        return None if self._sketch.count == 0 else self._sketch._max

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean (exact — tracked as a running sum)."""
        count = self._sketch.count
        return None if count == 0 else self.sum / count

    def observe(self, value: float) -> None:
        """Fold one sample into the distribution."""
        value = float(value)
        self._sketch.update(value)
        self.sum += value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (exact while samples fit the sketch).

        Raises:
            ObsError: On an empty histogram.
        """
        if self._sketch.count == 0:
            raise ObsError(f"histogram {self.name!r} is empty")
        return self._sketch.quantile(q)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram of the same name into this one."""
        if other.name != self.name:
            raise ObsError(
                f"cannot merge histogram {other.name!r} into {self.name!r}"
            )
        self._sketch.merge(other._sketch)
        self.sum += other.sum
        return self

    def to_event(self, run_id: str) -> Dict[str, Any]:
        """Serialize as one ``hist`` event for the telemetry stream."""
        return make_event(
            "hist",
            self.name,
            run_id,
            time.perf_counter(),
            sketch=self._sketch.to_dict(),
            sum=self.sum,
        )

    @classmethod
    def from_event(cls, event: Mapping[str, Any]) -> "Histogram":
        """Rebuild a histogram from one ``hist`` event.

        Raises:
            ObsError: When the embedded sketch state is malformed or of
                an unexpected kind.
        """
        name = event.get("name")
        if not isinstance(name, str) or not name:
            raise ObsError(f"hist event name must be a non-empty string, got {name!r}")
        try:
            sketch = sketch_from_dict(event["sketch"])
        except Exception as exc:
            raise ObsError(
                f"hist event {name!r} carries a malformed sketch: {exc}"
            ) from exc
        if not isinstance(sketch, CentroidSketch):
            raise ObsError(
                f"hist event {name!r} sketch kind {sketch.kind!r} is not a "
                "histogram backend"
            )
        hist = cls.__new__(cls)
        hist.name = name
        hist._sketch = sketch
        total = event.get("sum", 0.0)
        if not isinstance(total, (int, float)) or isinstance(total, bool):
            raise ObsError(f"hist event {name!r} sum must be a number, got {total!r}")
        hist.sum = float(total)
        return hist

    def summary(
        self, quantiles: Iterable[float] = DEFAULT_QUANTILES
    ) -> Dict[str, Any]:
        """Flat summary dict: count/min/max/mean plus ``p50``-style keys."""
        out: Dict[str, Any] = {
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for q in quantiles:
            label = f"p{q * 100:g}".replace(".", "_")
            out[label] = None if self.count == 0 else self.quantile(q)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, count={self.count})"


def merge_hist_events(
    events: Iterable[Mapping[str, Any]]
) -> Dict[str, Histogram]:
    """Fold every ``hist`` event of a stream into per-name histograms.

    Non-``hist`` events are skipped, so callers can pass a whole event
    stream.  Multiple events per name (partial flushes, worker shards)
    merge; sketches make the fold order-insensitive up to compression.
    """
    merged: Dict[str, Histogram] = {}
    for event in events:
        if event.get("kind") != "hist":
            continue
        hist = Histogram.from_event(event)
        existing = merged.get(hist.name)
        if existing is None:
            merged[hist.name] = hist
        else:
            existing.merge(hist)
    return merged


def quantile_table(
    histograms: Mapping[str, Histogram],
    quantiles: Iterable[float] = DEFAULT_QUANTILES,
) -> List[Dict[str, Any]]:
    """Sorted, JSON-ready rows (``name`` + summary) for reports and CLI."""
    qs = tuple(quantiles)
    rows = []
    for name in sorted(histograms):
        row: Dict[str, Any] = {"name": name}
        row.update(histograms[name].summary(qs))
        rows.append(row)
    return rows
