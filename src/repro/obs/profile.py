"""Span-tree profiling: self-time, hot paths, flamegraphs, critical path.

:mod:`repro.obs.report` answers *how long each phase took in total*;
this module answers *where the time actually went*.  It reconstructs
the span forest from a JSONL event stream — parent/child links come
from the span-id stack :mod:`repro.obs.trace` already emits — and
derives the three views a profile-driven optimization loop needs:

* **Self vs. cumulative time** (:func:`profile_events`): cumulative is
  a span's own duration; self-time is that duration minus the time
  spent in its (closed) children.  Ranking by self-time points at the
  code that burns cycles, not the orchestrator spans that merely
  contain it.
* **Collapsed stacks** (:func:`collapsed_stacks`): the
  ``root;child;grandchild N`` text format consumed by ``flamegraph.pl``
  and speedscope, weighted by self-time in integer microseconds.
* **Critical path** (:func:`critical_path`): for campaign traces, the
  longest dependency chain under the orchestrator span, per-worker busy
  time, pool idle time, and per-platform queueing vs. compute split —
  the numbers that say whether to buy parallelism or faster kernels.

Reconstruction is deliberately forgiving, because real traces are
messy: truncated files (a crashed worker never closes its spans),
orphaned ``span_end`` events (the matching start fell off the front of
a rotated file), reused ``(pid, span id)`` keys (pool workers recycle
pids and fresh per-job tracers restart ids at 1), and replayed
cache-hit events (``replay: true``) which describe a *previous* run's
time and are excluded from wall-clock attribution by default.  Each
anomaly is counted on the :class:`SpanForest` instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.analysis import format_table
from repro.errors import ObsError

#: Span names the critical-path analyzer anchors on (see
#: :mod:`repro.runner.campaign` for the emitting sites).
CAMPAIGN_SPAN = "runner.campaign"
DISPATCH_SPAN = "runner.dispatch"
JOB_SPAN = "runner.job"


@dataclass
class SpanNode:
    """One reconstructed span: timing, links, and anomaly flags."""

    name: str
    pid: int
    span_id: int
    start_ts: float
    attrs: Mapping[str, Any] = field(default_factory=dict)
    dur_s: float = 0.0
    closed: bool = False
    error: Optional[str] = None
    parent: Optional["SpanNode"] = field(default=None, repr=False)
    children: List["SpanNode"] = field(default_factory=list, repr=False)

    @property
    def self_s(self) -> float:
        """Duration minus time attributed to closed children (>= 0).

        Unclosed spans have no trustworthy duration, so their self-time
        is 0 — they surface through ``SpanForest.n_unclosed`` instead
        of skewing the ranking.
        """
        if not self.closed:
            return 0.0
        child_s = sum(c.dur_s for c in self.children if c.closed)
        return max(0.0, self.dur_s - child_s)

    def path(self) -> Tuple[str, ...]:
        """Span names from the root down to this span."""
        names: List[str] = []
        node: Optional[SpanNode] = self
        while node is not None:
            names.append(node.name)
            node = node.parent
        return tuple(reversed(names))


@dataclass(frozen=True)
class SpanForest:
    """The reconstructed span trees of one stream, plus anomaly counts.

    Attributes:
        roots: Top-level spans (no parent in the stream), in first-seen
            order.  Worker-process job spans are roots of their own
            trees until the critical-path analyzer relates them to the
            orchestrator's dispatch spans.
        n_spans: Spans reconstructed (excluded replays not counted).
        n_unclosed: Spans whose ``span_end`` never arrived — a crashed
            worker or truncated file.
        n_orphan_ends: ``span_end`` events with no matching open start.
        n_replay_spans: Span events skipped as cache-hit replays.
    """

    roots: Tuple[SpanNode, ...]
    n_spans: int
    n_unclosed: int
    n_orphan_ends: int
    n_replay_spans: int

    def walk(self) -> Iterator[SpanNode]:
        """Every span, depth-first in tree order."""
        stack = list(reversed(self.roots))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))


def build_forest(
    events: Iterable[Mapping[str, Any]], include_replay: bool = False
) -> SpanForest:
    """Reconstruct the span forest from an event stream.

    Spans are keyed by ``(pid, span id)``.  The key is *not* globally
    unique — a pool worker's pid outlives one job, and each job's fresh
    tracer restarts span ids at 1 — so each key holds a stack: stream
    order guarantees a prior generation's events are spliced before the
    next one opens, and when generations do interleave in a hand-built
    stream the innermost (most recent) open span matches first.

    Args:
        events: Decoded event dicts in stream order.
        include_replay: Attribute ``replay: true`` span events too.
            Off by default — replayed events re-describe a previous
            run's time, which would double-count against this run's
            wall clock.
    """
    open_spans: Dict[Tuple[int, Any], List[SpanNode]] = {}
    roots: List[SpanNode] = []
    n_spans = 0
    n_orphan_ends = 0
    n_replay_spans = 0
    for event in events:
        kind = event.get("kind")
        if kind not in ("span_start", "span_end"):
            continue
        if event.get("replay") and not include_replay:
            n_replay_spans += 1
            continue
        pid = event.get("pid")
        key = (pid, event.get("span"))
        if kind == "span_start":
            node = SpanNode(
                name=str(event.get("name", "")),
                pid=pid if isinstance(pid, int) else -1,
                span_id=event.get("span"),
                start_ts=float(event.get("ts", 0.0)),
                attrs=event.get("attrs") or {},
            )
            parent_key = (pid, event.get("parent"))
            parent_stack = (
                open_spans.get(parent_key) if "parent" in event else None
            )
            if parent_stack:
                node.parent = parent_stack[-1]
                node.parent.children.append(node)
            else:
                roots.append(node)
            open_spans.setdefault(key, []).append(node)
            n_spans += 1
        else:
            stack = open_spans.get(key)
            if not stack:
                n_orphan_ends += 1
                continue
            node = stack.pop()
            if not stack:
                del open_spans[key]
            node.dur_s = float(event.get("dur_s", 0.0))
            node.closed = True
            if "error" in event:
                node.error = str(event["error"])
    n_unclosed = sum(len(stack) for stack in open_spans.values())
    return SpanForest(
        roots=tuple(roots),
        n_spans=n_spans,
        n_unclosed=n_unclosed,
        n_orphan_ends=n_orphan_ends,
        n_replay_spans=n_replay_spans,
    )


@dataclass(frozen=True)
class ProfileRow:
    """Aggregated timing of one span name across the forest.

    ``cum_s`` sums each span's own duration, so a recursive span name
    counts its nested occurrences more than once — the standard
    cumulative-time caveat; ``self_s`` never double-counts.
    """

    name: str
    calls: int
    self_s: float
    cum_s: float
    errors: int = 0
    unclosed: int = 0


@dataclass(frozen=True)
class Profile:
    """Self-time-ranked profile of one stream."""

    rows: Tuple[ProfileRow, ...]
    forest: SpanForest
    total_self_s: float
    wall_s: float

    def render(self, limit: int = 0) -> str:
        """Headline plus the hot-span table (top *limit* rows, 0 = all)."""
        rows = self.rows[:limit] if limit else self.rows
        headline = (
            f"profile: {self.forest.n_spans} spans, "
            f"{len(self.rows)} names, total self {self.total_self_s:.3f}s, "
            f"wall {self.wall_s:.3f}s"
        )
        anomalies = []
        if self.forest.n_unclosed:
            anomalies.append(f"{self.forest.n_unclosed} unclosed")
        if self.forest.n_orphan_ends:
            anomalies.append(f"{self.forest.n_orphan_ends} orphan end(s)")
        if self.forest.n_replay_spans:
            anomalies.append(
                f"{self.forest.n_replay_spans} replayed span event(s) excluded"
            )
        if anomalies:
            headline += " (" + ", ".join(anomalies) + ")"
        table = format_table(
            ["span", "calls", "self_s", "cum_s", "self_%", "errors"],
            [
                [
                    r.name,
                    r.calls,
                    r.self_s,
                    r.cum_s,
                    (100.0 * r.self_s / self.total_self_s)
                    if self.total_self_s > 0
                    else 0.0,
                    r.errors,
                ]
                for r in rows
            ],
            float_fmt="{:.3f}",
        )
        return headline + "\n" + table


def profile_forest(forest: SpanForest) -> Profile:
    """Aggregate a forest into per-name self/cumulative rows."""
    calls: Dict[str, int] = {}
    self_s: Dict[str, float] = {}
    cum_s: Dict[str, float] = {}
    errors: Dict[str, int] = {}
    unclosed: Dict[str, int] = {}
    for node in forest.walk():
        name = node.name
        calls[name] = calls.get(name, 0) + 1
        self_s[name] = self_s.get(name, 0.0) + node.self_s
        if node.closed:
            cum_s[name] = cum_s.get(name, 0.0) + node.dur_s
        else:
            unclosed[name] = unclosed.get(name, 0) + 1
        if node.error is not None:
            errors[name] = errors.get(name, 0) + 1
    rows = [
        ProfileRow(
            name=name,
            calls=calls[name],
            self_s=self_s.get(name, 0.0),
            cum_s=cum_s.get(name, 0.0),
            errors=errors.get(name, 0),
            unclosed=unclosed.get(name, 0),
        )
        for name in calls
    ]
    rows.sort(key=lambda r: (-r.self_s, r.name))
    wall_s = max((r.dur_s for r in forest.roots if r.closed), default=0.0)
    return Profile(
        rows=tuple(rows),
        forest=forest,
        total_self_s=sum(self_s.values()),
        wall_s=wall_s,
    )


def profile_events(
    events: Iterable[Mapping[str, Any]], include_replay: bool = False
) -> Profile:
    """Convenience: :func:`build_forest` then :func:`profile_forest`."""
    return profile_forest(build_forest(events, include_replay=include_replay))


# -- flamegraph export ------------------------------------------------------


def collapsed_stacks(forest: SpanForest) -> List[str]:
    """Collapsed-stack lines (``a;b;c N``) weighted by self-time in µs.

    The exact input format of Brendan Gregg's ``flamegraph.pl`` and of
    speedscope's "collapsed stack" importer: one line per distinct call
    path, semicolon-joined frame names, one space, integer weight.
    Self-times under half a microsecond round to 0 and are dropped
    (both consumers require positive integer weights); multiple spans
    sharing one path sum.  Lines come back sorted for deterministic
    output.
    """
    weights: Dict[Tuple[str, ...], float] = {}
    for node in forest.walk():
        sec = node.self_s
        if sec <= 0.0:
            continue
        path = node.path()
        weights[path] = weights.get(path, 0.0) + sec
    lines = []
    for path in sorted(weights):
        usec = int(round(weights[path] * 1e6))
        if usec <= 0:
            continue
        lines.append(";".join(path) + f" {usec}")
    return lines


def parse_collapsed(text: str) -> Dict[Tuple[str, ...], int]:
    """Parse collapsed-stack text back to ``{path: weight_usec}``.

    The round-trip partner of :func:`collapsed_stacks`, used by tests
    (and available to tooling) to assert the export stays loadable.

    Raises:
        ObsError: On a line without a positive integer weight.
    """
    stacks: Dict[Tuple[str, ...], int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        path_part, sep, weight_part = line.rpartition(" ")
        try:
            weight = int(weight_part)
        except ValueError:
            weight = -1
        if not sep or not path_part or weight <= 0:
            raise ObsError(
                f"collapsed-stack line {lineno} is malformed: {line!r}"
            )
        path = tuple(path_part.split(";"))
        stacks[path] = stacks.get(path, 0) + weight
    return stacks


# -- critical path ----------------------------------------------------------


@dataclass(frozen=True)
class ChainLink:
    """One hop of the critical path."""

    name: str
    pid: int
    dur_s: float
    self_s: float


@dataclass(frozen=True)
class PlatformSplit:
    """Queueing vs. compute attribution for one measurement platform."""

    platform: str
    jobs: int
    queue_s: float
    compute_s: float


@dataclass(frozen=True)
class CriticalPath:
    """Where a campaign's wall-clock went, and what could shrink it.

    Attributes:
        wall_s: Duration of the campaign anchor span (the longest
            closed root when no anchor is present).
        anchor: Name of the span the analysis is rooted at.
        chain: The longest dependency chain from the anchor down —
            at each level the child with the largest cumulative time.
        chain_s: Total duration along the chain (the anchor's wall).
        n_workers: Distinct worker processes observed (pids other than
            the anchor's).
        busy_by_pid: Per-worker-pid total root-span busy time.
        pool_idle_s: ``n_workers * wall_s`` minus total worker busy
            time — the parallelism left on the table (0 inline).
        platforms: Per-platform queueing vs. compute split, from
            dispatch spans matched to worker job spans by spec hash.
    """

    wall_s: float
    anchor: str
    chain: Tuple[ChainLink, ...]
    chain_s: float
    n_workers: int
    busy_by_pid: Mapping[int, float]
    pool_idle_s: float
    platforms: Tuple[PlatformSplit, ...]

    def render(self) -> str:
        parts = [
            f"critical path: wall {self.wall_s:.3f}s under "
            f"{self.anchor!r}; {self.n_workers} worker process(es), "
            f"pool idle {self.pool_idle_s:.3f}s"
        ]
        if self.chain:
            rows = [
                [
                    i,
                    link.name,
                    link.pid,
                    link.dur_s,
                    link.self_s,
                ]
                for i, link in enumerate(self.chain)
            ]
            parts.append(
                format_table(
                    ["depth", "span", "pid", "cum_s", "self_s"],
                    rows,
                    float_fmt="{:.3f}",
                )
            )
        if self.platforms:
            rows = [
                [p.platform, p.jobs, p.queue_s, p.compute_s]
                for p in self.platforms
            ]
            parts.append(
                format_table(
                    ["platform", "jobs", "queue_s", "compute_s"],
                    rows,
                    float_fmt="{:.3f}",
                )
            )
        return "\n\n".join(parts)


def critical_path(
    forest: SpanForest, anchor: str = CAMPAIGN_SPAN
) -> CriticalPath:
    """Analyze a campaign forest's longest chain and parallel efficiency.

    Raises:
        ObsError: On a forest with no closed root span to anchor at.
    """
    anchor_node = None
    for root in forest.roots:
        if root.name == anchor and root.closed:
            anchor_node = root
            break
    if anchor_node is None:
        closed_roots = [r for r in forest.roots if r.closed]
        if not closed_roots:
            raise ObsError(
                "critical path needs at least one closed root span; the "
                "stream has none (truncated trace?)"
            )
        anchor_node = max(closed_roots, key=lambda r: r.dur_s)

    chain: List[ChainLink] = []
    node: Optional[SpanNode] = anchor_node
    while node is not None:
        chain.append(
            ChainLink(
                name=node.name,
                pid=node.pid,
                dur_s=node.dur_s,
                self_s=node.self_s,
            )
        )
        closed_children = [c for c in node.children if c.closed]
        node = (
            max(closed_children, key=lambda c: c.dur_s)
            if closed_children
            else None
        )

    # Worker busy time: every root span emitted by a pid other than the
    # anchor's is a unit of worker-side work (job spans arrive as roots
    # of their own trees — the process boundary severs the parent link).
    busy_by_pid: Dict[int, float] = {}
    for root in forest.roots:
        if root.pid == anchor_node.pid or not root.closed:
            continue
        busy_by_pid[root.pid] = busy_by_pid.get(root.pid, 0.0) + root.dur_s
    n_workers = len(busy_by_pid)
    wall_s = anchor_node.dur_s
    pool_idle_s = max(0.0, n_workers * wall_s - sum(busy_by_pid.values()))

    # Queueing vs. compute: a dispatch span covers submit-to-result at
    # the orchestrator; the matching worker job span (same spec hash
    # attribute) covers pure compute.  The difference is time spent
    # queued, pickling, or backing off between retries.
    job_compute: Dict[str, float] = {}
    for span_node in forest.walk():
        if span_node.name == JOB_SPAN and span_node.closed:
            spec = span_node.attrs.get("spec")
            if isinstance(spec, str):
                job_compute[spec] = (
                    job_compute.get(spec, 0.0) + span_node.dur_s
                )
    splits: Dict[str, List[float]] = {}
    for span_node in forest.walk():
        if span_node.name != DISPATCH_SPAN or not span_node.closed:
            continue
        platform = str(span_node.attrs.get("platform", "?"))
        compute = job_compute.get(span_node.attrs.get("spec"), 0.0)
        entry = splits.setdefault(platform, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += max(0.0, span_node.dur_s - compute)
        entry[2] += compute
    platforms = tuple(
        PlatformSplit(
            platform=platform,
            jobs=int(splits[platform][0]),
            queue_s=splits[platform][1],
            compute_s=splits[platform][2],
        )
        for platform in sorted(splits)
    )
    return CriticalPath(
        wall_s=wall_s,
        anchor=anchor_node.name,
        chain=tuple(chain),
        chain_s=wall_s,
        n_workers=n_workers,
        busy_by_pid=busy_by_pid,
        pool_idle_s=pool_idle_s,
        platforms=platforms,
    )
