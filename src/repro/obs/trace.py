"""In-process telemetry collection: spans, counters, gauges, log bridge.

One module-level :class:`Tracer` holds the event buffer for the whole
process.  Tracing is **off by default**; every public entry point
fast-paths on a single ``is None`` check, so instrumented hot loops pay
one attribute load and a branch when disabled — the studies' wall time
is indistinguishable with tracing off.

Concurrency model: the buffer append is guarded by a lock (analysis
threads may emit concurrently); the span *stack* used for parent links
is thread-local, so interleaved spans on different threads nest
correctly.  Worker processes each get their own tracer — their event
lists are returned through the job payload and merged by the campaign
runner (see :mod:`repro.runner.campaign`).
"""

from __future__ import annotations

import functools
import itertools
import logging
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ObsError
from repro.obs.events import encode_line, make_event, new_run_id, validate_event


class Tracer:
    """Thread-safe in-process event collector for one run.

    Args:
        run_id: Identifier stamped on every event; generated when
            omitted.
    """

    def __init__(self, run_id: Optional[str] = None):
        self.run_id = run_id or new_run_id()
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._span_ids = itertools.count(1)
        self._local = threading.local()
        self._hists: Dict[str, Any] = {}

    def emit(self, event: Dict[str, Any]) -> None:
        """Append one pre-built event to the buffer."""
        with self._lock:
            self._events.append(event)

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into the named histogram (see :func:`histogram`).

        Histogram state lives *beside* the event buffer — one sketch
        per name, not one event per sample — and is folded into the
        stream as ``hist`` events by :meth:`flush_histograms`.
        """
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                # Deferred import: repro.stream sits above repro.obs in
                # the import graph (its package init pulls the
                # instrumented measurement modules), so the sketch
                # dependency resolves on first use, never at import.
                from repro.obs.metrics import Histogram

                hist = self._hists[name] = Histogram(name)
            hist.observe(value)

    def flush_histograms(self) -> int:
        """Emit one ``hist`` event per histogram and reset their state.

        Safe to call repeatedly: each flush emits only the samples
        observed since the previous one, and readers *merge* same-name
        ``hist`` events (sketches are mergeable), so totals are
        preserved across partial flushes and process boundaries.

        Returns:
            The number of ``hist`` events emitted.
        """
        with self._lock:
            hists, self._hists = self._hists, {}
            for name in sorted(hists):
                self._events.append(hists[name].to_event(self.run_id))
        return len(hists)

    def size(self) -> int:
        """Number of buffered events."""
        with self._lock:
            return len(self._events)

    def snapshot(self) -> List[Dict[str, Any]]:
        """A copy of the buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    def drain(self) -> List[Dict[str, Any]]:
        """Return all buffered events and clear the buffer."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack


#: The process-wide tracer; ``None`` means tracing is disabled.
_TRACER: Optional[Tracer] = None


def enable(run_id: Optional[str] = None) -> Tracer:
    """Turn tracing on for this process.

    Raises:
        ObsError: If tracing is already enabled — nested enablement
            would silently interleave two owners' events; use
            :func:`capture` for scoped collection instead.
    """
    global _TRACER
    if _TRACER is not None:
        raise ObsError(
            "tracing is already enabled; use obs.capture() for a "
            "scoped event window"
        )
    _TRACER = Tracer(run_id)
    return _TRACER


def disable() -> List[Dict[str, Any]]:
    """Turn tracing off; return the drained events (empty if it was off).

    Pending histogram state is flushed into the stream first, so the
    drained events carry every observed sample.
    """
    global _TRACER
    tracer, _TRACER = _TRACER, None
    if tracer is None:
        return []
    tracer.flush_histograms()
    return tracer.drain()


@contextmanager
def suspended():
    """Temporarily disable tracing for the duration of a block.

    The active tracer (if any) is parked and restored on exit — its
    buffer, span stack, and histograms are untouched.  Used by the
    benchmark suite to time the disabled-lane fast path while ambient
    tracing is on; spans opened *outside* the block must not close
    inside it (their end event would be dropped).
    """
    global _TRACER
    parked, _TRACER = _TRACER, None
    try:
        yield
    finally:
        _TRACER = parked


def is_enabled() -> bool:
    """Whether this process is currently collecting telemetry."""
    return _TRACER is not None


def current_run_id() -> Optional[str]:
    """The active run id, or ``None`` when tracing is disabled."""
    tracer = _TRACER
    return tracer.run_id if tracer is not None else None


def events() -> List[Dict[str, Any]]:
    """Snapshot of the buffered events (empty when disabled)."""
    tracer = _TRACER
    return tracer.snapshot() if tracer is not None else []


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager emitting paired span_start/span_end events."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span_id", "_t0")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._span_id = next(tracer._span_ids)
        stack = tracer._stack()
        start = make_event(
            "span_start",
            self._name,
            tracer.run_id,
            time.perf_counter(),
            span=self._span_id,
        )
        if stack:
            start["parent"] = stack[-1]
        if self._attrs:
            start["attrs"] = self._attrs
        stack.append(self._span_id)
        tracer.emit(start)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_s = time.perf_counter() - self._t0
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        end = make_event(
            "span_end",
            self._name,
            tracer.run_id,
            time.perf_counter(),
            span=self._span_id,
            dur_s=dur_s,
        )
        if exc_type is not None:
            end["error"] = exc_type.__name__
        tracer.emit(end)
        return False


def span(name: str, **attrs: Any):
    """Open a named span: ``with span("phase"): ...``.

    Attributes must be plain JSON scalars; they land on the
    ``span_start`` event under ``attrs``.  When tracing is disabled the
    shared no-op context manager comes back and nothing is recorded.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return _Span(tracer, name, attrs)


def traced(name: Optional[str] = None):
    """Decorator form of :func:`span`: time every call of a function.

    The span name defaults to the function's qualified name.  The
    enabled check happens per *call*, so decorating at import time
    costs nothing while tracing stays off.
    """

    def decorate(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if _TRACER is None:
                return fn(*args, **kwargs)
            with span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def counter(name: str, value: float = 1) -> None:
    """Add *value* to a named counter (a monotonic tally when summed)."""
    tracer = _TRACER
    if tracer is None:
        return
    tracer.emit(
        make_event("counter", name, tracer.run_id, time.perf_counter(), value=value)
    )


def gauge(name: str, value: float) -> None:
    """Record a point-in-time measurement (last write wins in reports)."""
    tracer = _TRACER
    if tracer is None:
        return
    tracer.emit(
        make_event("gauge", name, tracer.run_id, time.perf_counter(), value=value)
    )


def histogram(name: str, value: float) -> None:
    """Fold one sample into a named distribution (p50/p95/p99 in reports).

    Samples accumulate in a mergeable quantile sketch
    (:class:`repro.obs.metrics.Histogram`) rather than as one event per
    observation — constant memory however hot the call site.  The
    sketch reaches the event stream as a ``hist`` event when flushed
    (:func:`flush_histograms`, or automatically at :func:`disable` /
    :func:`write_jsonl` / :func:`capture` exit).
    """
    tracer = _TRACER
    if tracer is None:
        return
    tracer.observe(name, value)


def flush_histograms() -> int:
    """Flush pending histogram state into the event stream.

    Returns:
        The number of ``hist`` events emitted (0 when disabled).
    """
    tracer = _TRACER
    return tracer.flush_histograms() if tracer is not None else 0


def heartbeat(name: str, done: float, **fields: Any) -> None:
    """Emit a live-progress pulse (jobs done so far, rates, ETA...).

    Heartbeats are the push half of the progress channel: workers and
    the campaign runner emit them, :class:`repro.obs.progress.ProgressTracker`
    folds them into a status line.  ``done`` is required by the schema;
    extra fields (``failed``, ``rate``, ``eta_s``...) ride along flat.
    """
    tracer = _TRACER
    if tracer is None:
        return
    tracer.emit(
        make_event(
            "heartbeat",
            name,
            tracer.run_id,
            time.perf_counter(),
            done=done,
            **fields,
        )
    )


def log_event(level: str, msg: str, name: str = "log") -> None:
    """Record a log line into the event stream."""
    tracer = _TRACER
    if tracer is None:
        return
    tracer.emit(
        make_event(
            "log", name, tracer.run_id, time.perf_counter(), level=level, msg=msg
        )
    )


def ingest(incoming: Iterable[Dict[str, Any]], replay: bool = False) -> int:
    """Merge externally-recorded events into the current stream.

    Used by the campaign runner to splice worker-process events into
    the orchestrator's stream, and to *replay* the recorded events of a
    cache hit (tagged ``"replay": true`` so reports can separate relived
    history from fresh measurement).  Events are validated; a no-op
    when tracing is disabled.

    Returns:
        The number of events merged.
    """
    tracer = _TRACER
    if tracer is None:
        return 0
    count = 0
    for event in incoming:
        validate_event(event)
        if replay:
            event = dict(event)
            event["replay"] = True
        tracer.emit(event)
        count += 1
    return count


class Captured:
    """Result holder for :func:`capture`: the events seen in the window."""

    def __init__(self, run_id: Optional[str] = None):
        self.run_id = run_id
        self.events: List[Dict[str, Any]] = []


@contextmanager
def capture(run_id: Optional[str] = None):
    """Collect the events emitted while the block runs.

    Two modes, chosen automatically:

    * Tracing **disabled** (a fresh worker process): enables a private
      tracer for the duration, drains it on exit, and disables again —
      the worker side of the process-boundary protocol.
    * Tracing **enabled** (inline runs, nested scopes): tees — events
      stay in the ambient stream *and* the slice emitted during the
      block is returned.

    The holder's ``events`` list is populated on exit even when the
    block raises, so callers can persist partial telemetry of a failed
    run.
    """
    holder = Captured()
    tracer = _TRACER
    if tracer is None:
        owned = enable(run_id)
        holder.run_id = owned.run_id
        try:
            yield holder
        finally:
            holder.events = disable()
    else:
        holder.run_id = tracer.run_id
        mark = tracer.size()
        try:
            yield holder
        finally:
            # Flush before slicing so histogram samples observed during
            # the window land inside the captured slice (samples from
            # before the window ride along — sketches are cheap and
            # merging keeps totals correct either way).
            tracer.flush_histograms()
            holder.events = tracer.snapshot()[mark:]


def write_jsonl(path, stream: Optional[Iterable[Dict[str, Any]]] = None) -> int:
    """Write events (default: the current buffer) as JSONL to *path*.

    Returns:
        The number of lines written.
    """
    if stream is None:
        flush_histograms()
        stream = events()
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in stream:
            handle.write(encode_line(event))
            handle.write("\n")
            count += 1
    return count


class TraceLogHandler(logging.Handler):
    """Forward :mod:`logging` records into the event stream as ``log`` events.

    Safe to leave attached permanently: when tracing is disabled the
    forward is a no-op, so the handler adds no observable cost.
    """

    def emit(self, record: logging.LogRecord) -> None:
        if _TRACER is None:
            return
        try:
            log_event(record.levelname, record.getMessage(), name=record.name)
        except Exception:  # never let telemetry break the logged code path
            self.handleError(record)
