"""Tests for traffic volume and session-count time series."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.workloads import (
    diurnal_volume,
    generate_client_prefixes,
    sessions_matrix,
    traffic_matrix,
)


class TestDiurnalVolume:
    def test_bounds(self):
        times = np.linspace(0, 48, 1000)
        volume = diurnal_volume(times, lon=0.0)
        assert volume.min() >= 0.35 - 1e-9
        assert volume.max() <= 1.0 + 1e-9

    def test_peak_at_evening(self):
        times = np.linspace(0, 24, 24 * 60, endpoint=False)
        volume = diurnal_volume(times, lon=0.0)
        assert times[np.argmax(volume)] == pytest.approx(20.0, abs=0.1)

    def test_longitude_shift(self):
        times = np.linspace(0, 24, 24 * 60, endpoint=False)
        east = diurnal_volume(times, lon=90.0)
        assert times[np.argmax(east)] == pytest.approx(14.0, abs=0.1)

    def test_24h_periodic(self):
        t = np.array([3.0, 11.0, 19.0])
        assert diurnal_volume(t, 10.0) == pytest.approx(diurnal_volume(t + 24.0, 10.0))


class TestTrafficMatrix:
    def test_shape_and_scaling(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 10, seed=0)
        times = np.linspace(0, 24, 96)
        matrix = traffic_matrix(prefixes, times)
        assert matrix.shape == (10, 96)
        # Row magnitude tracks the prefix weight.
        row_means = matrix.mean(axis=1)
        weights = np.array([p.weight for p in prefixes])
        ratio = row_means / weights
        assert ratio.std() / ratio.mean() < 0.25  # same cycle, same scale

    def test_empty_prefixes_rejected(self):
        with pytest.raises(MeasurementError):
            traffic_matrix([], np.linspace(0, 24, 10))


class TestSessionsMatrix:
    def test_bounds(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 10, seed=0)
        times = np.linspace(0, 24, 96)
        sessions = sessions_matrix(prefixes, times, sessions_at_peak=40, minimum=4)
        assert sessions.dtype.kind == "i"
        assert sessions.min() >= 4
        assert sessions.max() <= 40

    def test_invalid_parameters(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 2, seed=0)
        times = np.linspace(0, 24, 8)
        with pytest.raises(MeasurementError):
            sessions_matrix(prefixes, times, sessions_at_peak=0)
        with pytest.raises(MeasurementError):
            sessions_matrix(prefixes, times, sessions_at_peak=5, minimum=10)
