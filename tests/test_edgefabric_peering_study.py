"""Tests for the §3.1.3 peering-reduction emulation."""

import pytest

from repro.errors import AnalysisError
from repro.topology import Relationship, build_internet
from repro.edgefabric import peering_reduction_study
from repro.edgefabric.peering_study import _depeer
from repro.workloads import generate_client_prefixes


@pytest.fixture(scope="module")
def study(small_config):
    internet = build_internet(small_config)
    prefixes = generate_client_prefixes(internet, 40, seed=5)

    def factory():
        return build_internet(small_config)

    return peering_reduction_study(
        factory, prefixes, retentions=(1.0, 0.5, 0.0), total_traffic_gbps=3000.0
    )


class TestSweep:
    def test_point_per_retention(self, study):
        assert [p.retention for p in study.points] == [1.0, 0.5, 0.0]

    def test_peer_links_decrease(self, study):
        counts = [p.n_peer_links for p in study.points]
        assert counts[0] > counts[1] > counts[2] == 0

    def test_transit_share_grows(self, study):
        shares = [p.frac_traffic_on_transit for p in study.points]
        assert shares[0] < shares[-1]
        assert shares[-1] == pytest.approx(1.0)

    def test_baseline_has_no_degradation(self, study):
        assert study.points[0].frac_traffic_degraded_5ms == 0.0

    def test_utilization_reported_and_sane(self, study):
        for point in study.points:
            assert 0.0 < point.max_link_utilization < 10.0
            assert 0.0 <= point.frac_links_saturated <= 1.0
        # Baseline is provisioned to at most 60% on every loaded link.
        assert study.points[0].max_link_utilization <= 0.6 + 1e-9

    def test_degradation_at(self, study):
        assert study.degradation_at(1.0) == 0.0
        # Full de-peering shifts load onto transit and costs latency.
        assert study.degradation_at(0.0) >= 0.0
        with pytest.raises(AnalysisError):
            study.degradation_at(0.31)

    def test_latency_cost_of_depeering_is_modest(self, study):
        """The paper's conjecture: losing peers costs little latency as
        long as capacity holds (transit performs like peering)."""
        assert study.degradation_at(0.5) < 10.0


class TestDepeer:
    def test_removes_smallest_first(self, small_config):
        internet = build_internet(small_config)
        provider = internet.provider_asn
        before = [
            link
            for link in internet.graph.links()
            if link.relationship is Relationship.PEER
            and provider in (link.a, link.b)
        ]
        capacities = sorted(l.capacity_gbps for l in before)
        _depeer(internet, 0.5)
        after = [
            link
            for link in internet.graph.links()
            if link.relationship is Relationship.PEER
            and provider in (link.a, link.b)
        ]
        kept = sorted(l.capacity_gbps for l in after)
        # Kept links are the largest ones.
        assert kept == capacities[len(before) - len(after):]

    def test_retention_bounds(self, small_config):
        internet = build_internet(small_config)
        with pytest.raises(AnalysisError):
            _depeer(internet, 1.5)


class TestValidation:
    def test_sweep_must_start_at_one(self, small_config):
        internet = build_internet(small_config)
        prefixes = generate_client_prefixes(internet, 10, seed=5)
        with pytest.raises(AnalysisError):
            peering_reduction_study(
                lambda: build_internet(small_config), prefixes, retentions=(0.5,)
            )

    def test_requires_prefixes(self, small_config):
        from repro.errors import MeasurementError

        with pytest.raises(MeasurementError):
            peering_reduction_study(lambda: build_internet(small_config), [])
