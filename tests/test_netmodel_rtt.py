"""Tests for the MinRTT measurement model."""

import math

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.netmodel import (
    ci_halfwidth_matrix,
    median_min_rtt,
    median_min_rtt_ci_halfwidth,
    noisy_medians,
    sample_min_rtts,
    sampled_median_matrix,
)


class TestSampling:
    def test_samples_above_floor(self):
        rng = np.random.default_rng(0)
        samples = sample_min_rtts(30.0, 1000, rng, noise_scale_ms=2.0)
        assert (samples >= 30.0).all()
        assert samples.shape == (1000,)

    def test_needs_positive_sessions(self):
        rng = np.random.default_rng(0)
        with pytest.raises(MeasurementError):
            sample_min_rtts(30.0, 0, rng)

    def test_rejects_negative_latency(self):
        rng = np.random.default_rng(0)
        with pytest.raises(MeasurementError):
            sample_min_rtts(-1.0, 10, rng)


class TestAnalyticMedian:
    def test_median_formula(self):
        assert median_min_rtt(30.0, 2.0) == pytest.approx(30.0 + 2.0 * math.log(2))

    def test_vectorized(self):
        base = np.array([10.0, 20.0])
        out = median_min_rtt(base, 1.0)
        assert out == pytest.approx(base + math.log(2))

    def test_matches_empirical_median(self):
        rng = np.random.default_rng(1)
        samples = sample_min_rtts(50.0, 200_000, rng, noise_scale_ms=3.0)
        assert np.median(samples) == pytest.approx(
            median_min_rtt(50.0, 3.0), abs=0.05
        )


class TestCiHalfwidth:
    def test_shrinks_with_n(self):
        assert median_min_rtt_ci_halfwidth(2.0, 100) < median_min_rtt_ci_halfwidth(
            2.0, 10
        )

    def test_formula(self):
        assert median_min_rtt_ci_halfwidth(2.0, 16, z=2.0) == pytest.approx(1.0)

    def test_needs_positive_sessions(self):
        with pytest.raises(MeasurementError):
            median_min_rtt_ci_halfwidth(1.0, 0)

    def test_coverage_is_approximately_95_percent(self):
        """The CI built from the analytic half-width should cover the true
        median ~95% of the time."""
        rng = np.random.default_rng(2)
        n = 50
        scale = 2.0
        true_median = median_min_rtt(0.0, scale)
        half = median_min_rtt_ci_halfwidth(scale, n)
        hits = 0
        trials = 400
        for _ in range(trials):
            samples = sample_min_rtts(0.0, n, rng, noise_scale_ms=scale)
            estimate = np.median(samples)
            if abs(estimate - true_median) <= half:
                hits += 1
        assert 0.88 <= hits / trials <= 0.99


class TestNoisyMedians:
    def test_shape_and_center(self):
        rng = np.random.default_rng(3)
        base = np.full(20_000, 40.0)
        medians = noisy_medians(base, 25, rng, noise_scale_ms=2.0)
        assert medians.shape == base.shape
        assert medians.mean() == pytest.approx(median_min_rtt(40.0, 2.0), abs=0.02)

    def test_spread_matches_asymptotics(self):
        rng = np.random.default_rng(4)
        base = np.zeros(50_000)
        medians = noisy_medians(base, 25, rng, noise_scale_ms=2.0)
        assert medians.std() == pytest.approx(2.0 / math.sqrt(25), rel=0.05)

    def test_needs_positive_sessions(self):
        rng = np.random.default_rng(0)
        with pytest.raises(MeasurementError):
            noisy_medians(np.zeros(3), 0, rng)


class TestBatchHelpers:
    def test_ci_halfwidth_matrix_matches_scalar(self):
        counts = np.array([[1, 4], [25, 100]])
        matrix = ci_halfwidth_matrix(2.0, counts)
        assert matrix.shape == counts.shape
        for idx in np.ndindex(counts.shape):
            assert matrix[idx] == median_min_rtt_ci_halfwidth(
                2.0, int(counts[idx])
            )

    def test_ci_halfwidth_matrix_rejects_nonpositive(self):
        with pytest.raises(MeasurementError):
            ci_halfwidth_matrix(1.0, np.array([5, 0]))
        with pytest.raises(MeasurementError):
            ci_halfwidth_matrix(1.0, np.array([]))

    def test_sampled_median_matrix_statistics(self):
        rng = np.random.default_rng(11)
        floor = np.full((200, 250), 40.0)
        medians = sampled_median_matrix(floor, 25, rng, noise_scale_ms=2.0)
        assert medians.shape == floor.shape
        assert medians.mean() == pytest.approx(median_min_rtt(40.0, 2.0), abs=0.02)
        assert medians.std() == pytest.approx(2.0 / math.sqrt(25), rel=0.05)

    def test_sampled_median_matrix_broadcast_counts(self):
        rng = np.random.default_rng(12)
        floor = np.zeros((3, 50_000))
        counts = np.array([[4], [25], [100]])
        medians = sampled_median_matrix(floor, counts, rng, noise_scale_ms=2.0)
        for row, n in enumerate(counts[:, 0]):
            assert medians[row].std() == pytest.approx(
                2.0 / math.sqrt(n), rel=0.05
            )

    def test_sampled_median_matrix_rejects_nonpositive(self):
        rng = np.random.default_rng(0)
        with pytest.raises(MeasurementError):
            sampled_median_matrix(np.zeros((2, 2)), 0, rng)
