"""Tests for topology JSON serialization."""

import json

import pytest

from repro.errors import TopologyError
from repro.topology import (
    internet_from_dict,
    internet_to_dict,
    load_internet,
    save_internet,
)


@pytest.fixture(scope="module")
def roundtripped(small_internet, tmp_path_factory):
    path = tmp_path_factory.mktemp("topo") / "internet.json"
    save_internet(small_internet, path)
    return load_internet(path)


class TestRoundtrip:
    def test_as_inventory_preserved(self, small_internet, roundtripped):
        original = {a.asn: a for a in small_internet.graph.ases()}
        loaded = {a.asn: a for a in roundtripped.graph.ases()}
        assert set(original) == set(loaded)
        for asn, asys in original.items():
            other = loaded[asn]
            assert other.name == asys.name
            assert other.role is asys.role
            assert other.cities == asys.cities
            assert other.exit_policy is asys.exit_policy
            assert other.backbone_inflation == asys.backbone_inflation
            assert other.user_weight == asys.user_weight

    def test_links_preserved(self, small_internet, roundtripped):
        original = {l.key(): l for l in small_internet.graph.links()}
        loaded = {l.key(): l for l in roundtripped.graph.links()}
        assert set(original) == set(loaded)
        for key, link in original.items():
            other = loaded[key]
            assert other.relationship is link.relationship
            assert other.kind is link.kind
            assert other.customer_asn == link.customer_asn
            assert other.cities == link.cities
            assert other.capacity_gbps == link.capacity_gbps

    def test_wan_preserved(self, small_internet, roundtripped):
        assert roundtripped.wan.pop_codes == small_internet.wan.pop_codes
        for a in small_internet.wan.pop_codes:
            for b in small_internet.wan.pop_codes:
                assert roundtripped.wan.one_way_ms(a, b) == pytest.approx(
                    small_internet.wan.one_way_ms(a, b)
                )

    def test_bookkeeping_preserved(self, small_internet, roundtripped):
        assert roundtripped.provider_asn == small_internet.provider_asn
        assert roundtripped.tier1_asns == small_internet.tier1_asns
        assert roundtripped.eyeball_asns == small_internet.eyeball_asns
        assert roundtripped.dc_pop_code == small_internet.dc_pop_code

    def test_routing_identical_after_roundtrip(self, small_internet, roundtripped):
        from repro.bgp import propagate

        origin = small_internet.eyeball_asns[0]
        a = propagate(small_internet.graph, origin)
        b = propagate(roundtripped.graph, origin)
        for asys in small_internet.graph.ases():
            ra, rb = a.best(asys.asn), b.best(asys.asn)
            assert (ra is None) == (rb is None)
            if ra is not None:
                assert ra.path == rb.path


class TestValidation:
    def test_wrong_schema_rejected(self, small_internet):
        data = internet_to_dict(small_internet)
        data["schema"] = 999
        with pytest.raises(TopologyError):
            internet_from_dict(data)

    def test_file_is_json(self, small_internet, tmp_path):
        path = tmp_path / "net.json"
        save_internet(small_internet, path)
        data = json.loads(path.read_text())
        assert data["schema"] == 1
        assert data["provider_asn"] == small_internet.provider_asn

    def test_hand_edit_survives(self, small_internet, tmp_path):
        """A user can edit the JSON (e.g. drop a peer) and reload."""
        data = internet_to_dict(small_internet)
        provider = data["provider_asn"]
        peer_links = [
            l
            for l in data["links"]
            if l["relationship"] == "peer" and provider in (l["a"], l["b"])
        ]
        removed = peer_links[0]
        data["links"] = [l for l in data["links"] if l is not removed]
        loaded = internet_from_dict(data)
        other = removed["b"] if removed["a"] == provider else removed["a"]
        assert not loaded.graph.has_link(provider, other)
