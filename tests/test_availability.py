"""Tests for failure injection and the Section 4 availability analyses."""

import pytest

from repro.errors import AnalysisError, TopologyError
from repro.topology import build_internet
from repro.workloads import assign_ldns, generate_client_prefixes
from repro.availability import (
    anycast_vs_dns_failover,
    fail_pop_site,
    fail_provider_link,
    peering_failure_study,
    restore_link,
    transient_pop_outage,
    transient_provider_link_outage,
)
from repro.cdn import CdnDeployment
from repro.cdn.dns_redirection import RedirectionPolicy


@pytest.fixture(scope="module")
def factory(small_config):
    def build():
        return build_internet(small_config)

    return build


@pytest.fixture(scope="module")
def prefixes(small_internet):
    prefixes = generate_client_prefixes(small_internet, 60, seed=17)
    prefixes, _ = assign_ldns(prefixes, small_internet, seed=17)
    return prefixes


class TestFailureInjection:
    def test_fail_provider_link(self, factory):
        internet = factory()
        peer = internet.graph.peers(internet.provider_asn)[0]
        removed = fail_provider_link(internet, peer)
        assert removed.other(internet.provider_asn) == peer
        assert not internet.graph.has_link(internet.provider_asn, peer)

    def test_fail_pop_site_removes_interconnects(self, factory):
        internet = factory()
        pop = internet.wan.pops[0]
        survivors = fail_pop_site(internet, pop.code)
        assert pop.city not in survivors
        for neighbor in internet.graph.neighbors(internet.provider_asn):
            link = internet.graph.link(internet.provider_asn, neighbor)
            assert pop.city not in link.cities

    def test_fail_unknown_pop(self, factory):
        with pytest.raises(TopologyError):
            fail_pop_site(factory(), "zzz")

    def test_preserves_capacity_and_kind(self, factory):
        internet = factory()
        pop = internet.wan.pops[0]
        before = {
            n: internet.graph.link(internet.provider_asn, n)
            for n in internet.graph.neighbors(internet.provider_asn)
        }
        fail_pop_site(internet, pop.code)
        for neighbor in internet.graph.neighbors(internet.provider_asn):
            link = internet.graph.link(internet.provider_asn, neighbor)
            old = before[neighbor]
            assert link.capacity_gbps == old.capacity_gbps
            assert link.kind == old.kind


class TestTransientFailures:
    """Restore hooks: an outage window that leaves no trace afterwards,
    without deep-copying the Internet."""

    def test_restore_link_reattaches_exact_object(self, factory):
        internet = factory()
        peer = internet.graph.peers(internet.provider_asn)[0]
        removed = fail_provider_link(internet, peer)
        restore_link(internet, removed)
        assert internet.graph.link(internet.provider_asn, peer) is removed

    def test_restore_link_rejects_double_repair(self, factory):
        internet = factory()
        peer = internet.graph.peers(internet.provider_asn)[0]
        removed = fail_provider_link(internet, peer)
        restore_link(internet, removed)
        with pytest.raises(TopologyError):
            restore_link(internet, removed)

    def test_provider_link_outage_window(self, factory):
        internet = factory()
        peer = internet.graph.peers(internet.provider_asn)[0]
        before = {link.key(): link for link in internet.graph.links()}
        with transient_provider_link_outage(internet, peer) as link:
            assert not internet.graph.has_link(internet.provider_asn, peer)
            assert link.other(internet.provider_asn) == peer
        after = {link.key(): link for link in internet.graph.links()}
        assert before.keys() == after.keys()
        assert all(before[k] is after[k] for k in before)

    def test_pop_outage_window_restores_rewritten_links(self, factory):
        internet = factory()
        pop = internet.wan.pops[0]
        before = {link.key(): link for link in internet.graph.links()}
        with transient_pop_outage(internet, pop.code) as survivors:
            assert pop.city not in survivors
            provider = internet.provider_asn
            for neighbor in internet.graph.neighbors(provider):
                link = internet.graph.link(provider, neighbor)
                assert pop.city not in link.cities
        after = {link.key(): link for link in internet.graph.links()}
        assert before.keys() == after.keys()
        assert all(before[k] is after[k] for k in before)

    def test_pop_outage_restores_on_exception(self, factory):
        internet = factory()
        pop = internet.wan.pops[0]
        before = {link.key(): link for link in internet.graph.links()}
        with pytest.raises(RuntimeError, match="boom"):
            with transient_pop_outage(internet, pop.code):
                raise RuntimeError("boom")
        after = {link.key(): link for link in internet.graph.links()}
        assert before.keys() == after.keys()


class TestFailover:
    @pytest.fixture(scope="class")
    def busiest_pop(self, factory, prefixes):
        from collections import Counter

        deployment = CdnDeployment(factory())
        catchments = Counter(
            deployment.catchment(p).code for p in prefixes
        )
        return catchments.most_common(1)[0][0]

    def test_anycast_reconverges(self, factory, prefixes, busiest_pop):
        result = anycast_vs_dns_failover(factory, prefixes, busiest_pop)
        # The failed site served real traffic, all of it reconverged.
        assert result.frac_traffic_shifted > 0.0
        assert result.frac_traffic_unreachable == 0.0
        # Failover costs latency but is bounded (a nearby site takes over).
        assert 0.0 <= result.median_added_latency_ms < 150.0

    def test_dns_pinned_clients_stranded(self, factory, prefixes, busiest_pop):
        pinned = RedirectionPolicy(
            choices={p.ldns: busiest_pop for p in prefixes},
            margin_ms=1.0,
        )
        result = anycast_vs_dns_failover(
            factory, prefixes, busiest_pop, policy=pinned, ttl_s=60.0
        )
        # Everyone was pinned to the failed site.
        assert result.dns_frac_stranded == pytest.approx(1.0)
        assert result.dns_outage_user_seconds == pytest.approx(60.0)

    def test_no_policy_no_stranding(self, factory, prefixes, busiest_pop):
        result = anycast_vs_dns_failover(factory, prefixes, busiest_pop)
        assert result.dns_frac_stranded == 0.0

    def test_validation(self, factory, prefixes):
        with pytest.raises(AnalysisError):
            anycast_vs_dns_failover(factory, [], "iad")
        with pytest.raises(AnalysisError):
            anycast_vs_dns_failover(factory, prefixes, "iad", ttl_s=0.0)


class TestPeeringRisk:
    def test_risk_profile(self, small_internet, prefixes):
        result = peering_failure_study(small_internet, prefixes)
        assert result.risks
        shares = [r.traffic_share for r in result.risks]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) <= 1.0 + 1e-9
        assert result.top_share == shares[0]
        assert 0.0 <= result.single_interconnect_share <= 1.0

    def test_interconnect_counts_positive(self, small_internet, prefixes):
        result = peering_failure_study(small_internet, prefixes)
        assert all(r.n_interconnects >= 1 for r in result.risks)
        assert result.median_interconnects_small >= 1.0
        assert result.median_interconnects_large >= 1.0

    def test_requires_prefixes(self, small_internet):
        with pytest.raises(AnalysisError):
            peering_failure_study(small_internet, [])
