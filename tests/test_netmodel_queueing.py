"""Tests for the utilization-dependent queueing model."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.netmodel import queueing_delay_ms


class TestQueueingDelay:
    def test_zero_at_idle(self):
        assert queueing_delay_ms(0.0) == 0.0

    def test_base_at_half(self):
        assert queueing_delay_ms(0.5, base_ms=1.5) == pytest.approx(1.5)

    def test_monotone(self):
        us = np.linspace(0.0, 2.0, 100)
        delays = queueing_delay_ms(us)
        assert (np.diff(delays) >= -1e-12).all()

    def test_overload_regime_linear(self):
        a = queueing_delay_ms(1.2)
        b = queueing_delay_ms(1.3)
        assert b - a == pytest.approx(0.1 * 200.0, rel=1e-6)

    def test_scalar_and_array(self):
        scalar = queueing_delay_ms(0.7)
        array = queueing_delay_ms(np.array([0.7, 0.7]))
        assert isinstance(scalar, float)
        assert array.shape == (2,)
        assert array[0] == pytest.approx(scalar)

    def test_negative_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            queueing_delay_ms(-0.1)
        with pytest.raises(AnalysisError):
            queueing_delay_ms(0.5, base_ms=-1.0)

    def test_finite_everywhere(self):
        assert np.isfinite(queueing_delay_ms(np.array([0.95, 1.0, 5.0]))).all()
