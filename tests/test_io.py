"""Tests for dataset serialization and figure export."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis import weighted_cdf
from repro.io import (
    load_beacon_dataset,
    load_egress_dataset,
    save_beacon_dataset,
    save_egress_dataset,
    write_cdf_csv,
    write_country_csv,
)


@pytest.fixture(scope="module")
def egress_dataset(small_internet):
    from repro.edgefabric import MeasurementConfig, run_measurement
    from repro.workloads import generate_client_prefixes

    prefixes = generate_client_prefixes(small_internet, 25, seed=21)
    return run_measurement(
        small_internet, prefixes, MeasurementConfig(days=0.25, seed=21)
    )


@pytest.fixture(scope="module")
def beacon_dataset(small_internet, small_prefixes):
    from repro.cdn import BeaconConfig, CdnDeployment, run_beacon_campaign

    deployment = CdnDeployment(small_internet)
    return run_beacon_campaign(
        deployment,
        small_prefixes[:25],
        BeaconConfig(days=0.5, requests_per_prefix=8, seed=21),
    )


class TestEgressRoundtrip:
    def test_roundtrip_exact(self, egress_dataset, tmp_path):
        path = tmp_path / "egress.npz"
        save_egress_dataset(egress_dataset, path)
        loaded = load_egress_dataset(path)
        assert np.array_equal(loaded.medians, egress_dataset.medians, equal_nan=True)
        assert np.array_equal(loaded.volumes, egress_dataset.volumes)
        assert loaded.max_routes == egress_dataset.max_routes
        assert loaded.pairs == egress_dataset.pairs

    def test_analysis_identical_after_roundtrip(self, egress_dataset, tmp_path):
        from repro.edgefabric import bgp_vs_best_alternate

        path = tmp_path / "egress.npz"
        save_egress_dataset(egress_dataset, path)
        loaded = load_egress_dataset(path)
        a = bgp_vs_best_alternate(egress_dataset)
        b = bgp_vs_best_alternate(loaded)
        assert a.frac_alternate_better_5ms == b.frac_alternate_better_5ms
        assert np.array_equal(a.cdf.xs, b.cdf.xs)

    def test_wrong_kind_rejected(self, egress_dataset, tmp_path):
        path = tmp_path / "egress.npz"
        save_egress_dataset(egress_dataset, path)
        with pytest.raises(AnalysisError):
            load_beacon_dataset(path)


class TestBeaconRoundtrip:
    def test_roundtrip_exact(self, beacon_dataset, tmp_path):
        path = tmp_path / "beacon.npz"
        save_beacon_dataset(beacon_dataset, path)
        loaded = load_beacon_dataset(path)
        assert np.array_equal(loaded.anycast_rtt, beacon_dataset.anycast_rtt)
        assert np.array_equal(
            loaded.unicast_rtt, beacon_dataset.unicast_rtt, equal_nan=True
        )
        assert loaded.prefixes == beacon_dataset.prefixes
        assert loaded.catchments == beacon_dataset.catchments
        assert loaded.fe_codes == beacon_dataset.fe_codes
        assert loaded.n_nearby == beacon_dataset.n_nearby

    def test_analysis_identical_after_roundtrip(self, beacon_dataset, tmp_path):
        from repro.cdn import anycast_vs_best_unicast

        path = tmp_path / "beacon.npz"
        save_beacon_dataset(beacon_dataset, path)
        loaded = load_beacon_dataset(path)
        a = anycast_vs_best_unicast(beacon_dataset)
        b = anycast_vs_best_unicast(loaded)
        assert a.frac_within_10ms == b.frac_within_10ms


@pytest.fixture(scope="module")
def tier_dataset(small_internet):
    from repro.cloudtiers import (
        CampaignConfig,
        CloudDeployment,
        SpeedcheckerPlatform,
        run_campaign,
    )

    platform = SpeedcheckerPlatform(CloudDeployment(small_internet), seed=21)
    return run_campaign(
        platform,
        CampaignConfig(days=2, vps_per_day=25, rounds_per_day=2, seed=21),
    )


class TestTierRoundtrip:
    def test_roundtrip_exact(self, tier_dataset, tmp_path):
        from repro.io import load_tier_dataset, save_tier_dataset

        path = tmp_path / "tier.npz"
        save_tier_dataset(tier_dataset, path)
        loaded = load_tier_dataset(path)
        assert set(loaded.vps) == set(tier_dataset.vps)
        assert loaded.eligible == tier_dataset.eligible
        assert [(r.vp_id, r.day, r.median_ms) for r in loaded.records] == [
            (r.vp_id, r.day, r.median_ms) for r in tier_dataset.records
        ]
        assert set(loaded.traceroutes) == set(tier_dataset.traceroutes)

    def test_analysis_identical(self, tier_dataset, tmp_path):
        from repro.cloudtiers import country_medians
        from repro.io import load_tier_dataset, save_tier_dataset

        path = tmp_path / "tier.npz"
        save_tier_dataset(tier_dataset, path)
        loaded = load_tier_dataset(path)
        a = country_medians(tier_dataset, min_vps=1)
        b = country_medians(loaded, min_vps=1)
        assert a.country_diff_ms == b.country_diff_ms


class TestCsvExport:
    def test_cdf_csv(self, tmp_path):
        cdf = weighted_cdf([1.0, 2.0, 3.0], weights=[1.0, 2.0, 1.0])
        path = tmp_path / "fig.csv"
        write_cdf_csv(cdf, path, label="diff_ms")
        lines = path.read_text().splitlines()
        assert lines[0] == "diff_ms,cum_fraction"
        assert len(lines) == 4
        assert lines[-1].endswith(",1")

    def test_country_csv(self, tmp_path):
        path = tmp_path / "fig5.csv"
        write_country_csv({"IN": -30.0, "US": 1.5}, path)
        text = path.read_text()
        assert "IN,asia,-30" in text
        assert "US,north-america,1.5" in text


class TestHeaders:
    """The shared versioned-header helpers used by io and the runner."""

    def test_make_header_leads_with_schema_and_kind(self):
        from repro.io import SCHEMA_VERSION, make_header

        header = make_header("beacon", extra=1)
        assert header["schema"] == SCHEMA_VERSION
        assert header["kind"] == "beacon"
        assert header["extra"] == 1

    def test_check_header_roundtrip(self):
        from repro.io import check_header, make_header

        check_header(make_header("tier"), "tier")

    def test_check_header_rejects_wrong_schema(self):
        from repro.io import check_header

        with pytest.raises(AnalysisError):
            check_header({"schema": 999, "kind": "tier"}, "tier")

    def test_check_header_rejects_wrong_kind(self):
        from repro.io import check_header, make_header

        with pytest.raises(AnalysisError):
            check_header(make_header("beacon"), "tier")
