"""Smoke tests: every example script at least imports and wires up.

Full example runs take minutes; these tests execute each script's
``main`` against monkeypatched tiny parameters where that's feasible,
and otherwise verify the module imports and exposes ``main``.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


def load_example(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    # Examples import siblings' names at module scope only via repro;
    # executing the module runs no work (guarded by __main__).
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "edge_fabric_study",
            "anycast_cdn_study",
            "cloud_tiers_study",
            "peering_reduction",
            "availability_study",
            "split_tcp_study",
            "custom_topology",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_example_importable_with_main(self, path):
        module = load_example(path)
        assert callable(getattr(module, "main", None)), path.stem

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_example_has_docstring(self, path):
        module = load_example(path)
        assert (module.__doc__ or "").strip(), f"{path.stem} lacks a docstring"
