"""Tests for repro.lint: per-rule snippets, baseline, CLI, self-check.

Each rule gets a positive snippet (the violation fires) and a negative
snippet (the disciplined spelling passes), compiled from strings into
a temporary repo layout so module-scoped rules see realistic dotted
paths.  The suite ends with the self-check the CI gate relies on:
``repro-bgp lint`` is clean against this repo's own ``src/`` with the
committed baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    BaselineError,
    Finding,
    ImportMap,
    build_rules,
    lint_paths,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.lint.checks import ALL_RULE_CLASSES
from repro.lint.rules import module_name, suppressed_rules

REPO_ROOT = Path(__file__).resolve().parents[1]

ALL_RULE_IDS = {cls.rule_id for cls in ALL_RULE_CLASSES}


def lint_snippet(tmp_path, source, rel="src/repro/cdn/mod.py", lane_test=None):
    """Write *source* at *rel* under a temp repo root and lint it."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    if lane_test is not None:
        lane_path = tmp_path / "tests" / "test_lane_agreement.py"
        lane_path.parent.mkdir(parents=True, exist_ok=True)
        lane_path.write_text(textwrap.dedent(lane_test), encoding="utf-8")
    return lint_paths([target], root=tmp_path)


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestFramework:
    def test_module_name_src_layout(self):
        assert (
            module_name(Path("src/repro/cdn/catchment.py")) == "repro.cdn.catchment"
        )
        assert module_name(Path("src/repro/lint/__init__.py")) == "repro.lint"
        assert module_name(Path("somewhere/loose.py")) == "loose"

    def test_suppression_comment_parsing(self):
        assert suppressed_rules("x = 1  # repro-lint: disable=RNG001") == {"RNG001"}
        assert suppressed_rules("# repro-lint: disable=RNG001, TIME001") == {
            "RNG001",
            "TIME001",
        }
        assert suppressed_rules("x = 1  # a normal comment") == set()

    def test_import_map_resolves_aliases(self):
        import ast

        tree = ast.parse(
            "import numpy as np\n"
            "from numpy.random import default_rng as mk\n"
            "import os\n"
        )
        imports = ImportMap(tree)
        np_chain = ast.parse("np.random.default_rng", mode="eval").body
        assert imports.resolve(np_chain) == "numpy.random.default_rng"
        direct = ast.parse("mk", mode="eval").body
        assert imports.resolve(direct) == "numpy.random.default_rng"
        local = ast.parse("self.rng", mode="eval").body
        assert imports.resolve(local) is None

    def test_syntax_error_becomes_finding(self, tmp_path):
        findings = lint_snippet(tmp_path, "def broken(:\n")
        assert rules_of(findings) == {"SYNTAX"}

    def test_fresh_rules_per_run(self):
        first = build_rules()
        second = build_rules()
        assert {type(r) for r in first} == set(ALL_RULE_CLASSES)
        assert all(a is not b for a, b in zip(first, second))


class TestRngRules:
    def test_stdlib_random_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert "RNG001" in rules_of(findings)

    def test_numpy_legacy_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def noise(n):
                np.random.seed(0)
                return np.random.rand(n)
            """,
        )
        assert sum(1 for f in findings if f.rule == "RNG001") == 2

    def test_seeded_generator_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def noise(n, seed):
                rng = np.random.default_rng(seed)
                return rng.normal(size=n)
            """,
        )
        assert rules_of(findings) == set()

    def test_fresh_entropy_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def noise(n):
                rng = np.random.default_rng()
                return rng.normal(size=n)
            """,
        )
        assert "RNG002" in rules_of(findings)

    def test_literal_seed_without_param_warns(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from numpy.random import default_rng

            def noise(n):
                return default_rng(1234).normal(size=n)
            """,
        )
        hits = [f for f in findings if f.rule == "RNG002"]
        assert len(hits) == 1
        assert hits[0].severity == "warning"

    def test_literal_seed_with_rng_param_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def noise(n, rng=None):
                rng = rng or np.random.default_rng(0)
                return rng.normal(size=n)
            """,
        )
        assert rules_of(findings) == set()

    def test_tests_are_out_of_scope(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import random

            def test_thing():
                assert random.random() >= 0
            """,
            rel="tests/test_thing.py",
        )
        assert rules_of(findings) == set()


class TestTimePurity:
    MEASUREMENT = """
        import time

        def measure():
            return time.time()
        """

    def test_wall_clock_in_measurement_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, self.MEASUREMENT, rel="src/repro/netmodel/probe.py"
        )
        assert "TIME001" in rules_of(findings)

    def test_datetime_now_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            rel="src/repro/cloudtiers/probe.py",
        )
        assert "TIME001" in rules_of(findings)

    def test_wall_clock_in_obs_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path, self.MEASUREMENT, rel="src/repro/obs/stamps.py"
        )
        assert rules_of(findings) == set()

    def test_monotonic_clock_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import time

            def stopwatch():
                return time.perf_counter()
            """,
            rel="src/repro/edgefabric/probe.py",
        )
        assert rules_of(findings) == set()


class TestLaneParity:
    FAST_FN = """
        def resample(values, fast=True):
            return values
        """

    def test_unreferenced_fast_lane_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            self.FAST_FN,
            rel="src/repro/cdn/resample.py",
            lane_test="def test_other():\n    pass\n",
        )
        assert "LANE001" in rules_of(findings)

    def test_missing_lane_suite_flags_everything(self, tmp_path):
        findings = lint_snippet(
            tmp_path, self.FAST_FN, rel="src/repro/cdn/resample.py"
        )
        assert "LANE001" in rules_of(findings)

    def test_referenced_fast_lane_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            self.FAST_FN,
            rel="src/repro/cdn/resample.py",
            lane_test="""
            def test_resample_lanes_agree():
                assert resample([1], fast=True) == resample([1], fast=False)
            """,
        )
        assert rules_of(findings) == set()

    def test_private_fast_helpers_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def _resample_impl(values, fast=True):
                return values
            """,
            rel="src/repro/cdn/resample.py",
        )
        assert rules_of(findings) == set()


class TestStreamingLaneParity:
    STREAMING_FN = """
        def aggregate(values, streaming=False):
            return values
        """

    def test_unreferenced_streaming_lane_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            self.STREAMING_FN,
            rel="src/repro/stream/agg.py",
            lane_test="def test_other():\n    pass\n",
        )
        assert "LANE002" in rules_of(findings)

    def test_referenced_streaming_lane_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            self.STREAMING_FN,
            rel="src/repro/stream/agg.py",
            lane_test="""
            def test_aggregate_lanes_agree():
                assert aggregate([1], streaming=True) == aggregate([1])
            """,
        )
        assert rules_of(findings) == set()

    def test_private_streaming_helpers_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def _aggregate_impl(values, streaming=False):
                return values
            """,
            rel="src/repro/stream/agg.py",
        )
        assert rules_of(findings) == set()

    def test_both_lane_params_flag_independently(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def synthesize(values, fast=True, streaming=False):
                return values
            """,
            rel="src/repro/edgefabric/synth.py",
            lane_test="def test_other():\n    pass\n",
        )
        assert {"LANE001", "LANE002"} <= rules_of(findings)


class TestCrashContainment:
    def test_crash_call_outside_faults_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import os

            def bail():
                os._exit(1)
            """,
            rel="src/repro/runner/worker.py",
        )
        assert "CRASH001" in rules_of(findings)

    def test_crash_call_inside_faults_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import os

            def crash_worker():
                os._exit(17)
            """,
            rel="src/repro/faults/boom.py",
        )
        assert rules_of(findings) == set()


class TestSpanNames:
    def test_fstring_span_name_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from repro import obs

            def work(i):
                with obs.span(f"job.{i}"):
                    return i
            """,
        )
        assert "OBS001" in rules_of(findings)

    def test_concatenated_counter_name_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from repro.obs import trace as obs

            def tally(platform):
                obs.counter("jobs." + platform)
            """,
        )
        assert "OBS001" in rules_of(findings)

    def test_variable_histogram_name_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from repro import obs

            def observe(metric_name, value):
                obs.histogram(metric_name, value)
            """,
        )
        assert "OBS001" in rules_of(findings)

    def test_literal_names_pass(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from repro import obs

            def work(i):
                with obs.span("runner.job", index=i):
                    obs.counter("runner.jobs")
                    obs.histogram("runner.job.latency_s", 0.5)
            """,
        )
        assert rules_of(findings) == set()

    def test_module_constant_name_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from repro.obs import trace as obs

            HEARTBEAT_NAME = "runner.progress"

            def pulse(done):
                obs.heartbeat(HEARTBEAT_NAME, done=done)
            """,
        )
        assert rules_of(findings) == set()

    def test_bare_traced_decorator_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from repro import obs

            @obs.traced()
            def phase():
                return 1
            """,
        )
        assert rules_of(findings) == set()

    def test_unrelated_span_function_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def span(name):
                return name

            def work(i):
                span(f"job.{i}")
            """,
        )
        assert rules_of(findings) == set()


class TestExceptionTaxonomy:
    def test_silent_swallow_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def load():
                try:
                    return 1
                except Exception:
                    return None
            """,
            rel="src/repro/runner/loader.py",
        )
        assert "EXC001" in rules_of(findings)

    def test_bare_except_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def load():
                try:
                    return 1
                except:
                    pass
            """,
            rel="src/repro/faults/loader.py",
        )
        assert "EXC001" in rules_of(findings)

    def test_reraise_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class TypedError(Exception):
                pass

            def load():
                try:
                    return 1
                except Exception as exc:
                    raise TypedError("context") from exc
            """,
            rel="src/repro/runner/loader.py",
        )
        assert rules_of(findings) == set()

    def test_counter_increment_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from repro import obs

            def load():
                try:
                    return 1
                except Exception:
                    obs.counter("runner.load.swallowed")
                    return None
            """,
            rel="src/repro/runner/loader.py",
        )
        assert rules_of(findings) == set()

    def test_outside_scoped_packages_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def parse(row):
                try:
                    return float(row)
                except Exception:
                    return None
            """,
            rel="src/repro/analysis/rows.py",
        )
        assert rules_of(findings) == set()


class TestSerializationSafety:
    def test_generator_field_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass
            import numpy as np

            @dataclass
            class BadStudy:
                seed: int
                rng: np.random.Generator

                def run(self):
                    return self.rng.normal()
            """,
            rel="src/repro/core/bad.py",
        )
        assert "SER001" in rules_of(findings)

    def test_lock_field_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import threading
            from dataclasses import dataclass
            from typing import Optional

            @dataclass
            class BadStudy:
                guard: Optional[threading.Lock] = None

                def run(self):
                    return 1
            """,
            rel="src/repro/core/bad.py",
        )
        assert "SER001" in rules_of(findings)

    def test_plain_config_fields_pass(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class GoodStudy:
                seed: int = 0
                n_prefixes: int = 150
                days: float = 3.0

                def run(self):
                    return self.seed
            """,
            rel="src/repro/core/good.py",
        )
        assert rules_of(findings) == set()

    def test_non_payload_dataclasses_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass
            import numpy as np

            @dataclass
            class ScratchState:
                rng: np.random.Generator

                def step(self):
                    return self.rng.normal()
            """,
            rel="src/repro/core/state.py",
        )
        assert rules_of(findings) == set()


class TestSuppression:
    def test_disable_comment_silences_one_rule(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def noise(n):
                rng = np.random.default_rng()  # repro-lint: disable=RNG002
                return rng.normal(size=n)
            """,
        )
        assert rules_of(findings) == set()

    def test_disable_all_silences_the_line(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()  # repro-lint: disable=all
            """,
        )
        assert rules_of(findings) == set()

    def test_disable_comment_is_per_line(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import random  # repro-lint: disable=RNG001

            def jitter():
                return random.random()
            """,
        )
        assert "RNG001" in rules_of(findings)

    def test_lane_parity_suppressible_at_def(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def resample(values, fast=True):  # repro-lint: disable=LANE001
                return values
            """,
            rel="src/repro/cdn/resample.py",
        )
        assert rules_of(findings) == set()


class TestBaseline:
    def test_round_trip_and_split(self, tmp_path):
        finding = Finding(
            path="src/repro/x.py",
            line=3,
            col=0,
            rule="RNG001",
            severity="error",
            message="m",
        )
        other = Finding(
            path="src/repro/y.py",
            line=9,
            col=4,
            rule="TIME001",
            severity="error",
            message="n",
        )
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [finding])
        keys = load_baseline(baseline_path)
        assert keys == {("RNG001", "src/repro/x.py", 3)}
        fresh, grandfathered = split_baselined([finding, other], keys)
        assert fresh == [other]
        assert grandfathered == [finding]

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(bad)
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(bad)


#: One violation of every rule, spread over a fake repo tree.
VIOLATION_FILES = {
    "src/repro/cdn/bad.py": """
        import os
        import random
        import time

        import numpy as np

        def jitter():
            return random.random()

        def fresh():
            return np.random.default_rng()

        def stamp():
            return time.time()

        def bail():
            os._exit(1)

        def resample(values, fast=True):
            return values

        def ingest(values, streaming=False):
            return values

        def trace_one(index):
            from repro import obs

            with obs.span(f"job.{index}"):
                return index
        """,
    "src/repro/runner/bad.py": """
        from dataclasses import dataclass
        import numpy as np

        def load():
            try:
                return 1
            except Exception:
                return None

        @dataclass
        class BadStudy:
            rng: np.random.Generator

            def run(self):
                return self.rng.normal()
        """,
    # Graph-rule bait: a spec-able payload whose worker cone launders a
    # seed (DET001) and takes a lock (FORK001), a shared-memory borrower
    # that writes (SHM001), and a drifted lane pair (PAR001).
    "src/repro/cdn/badflow.py": """
        import threading
        from dataclasses import dataclass

        import numpy as np

        def draw_noise():
            return np.random.default_rng(7).normal()

        def guarded():
            with threading.Lock():
                return 1

        @dataclass
        class NoiseStudy:
            def run(self):
                return draw_noise() + guarded()

        def blend_scalar(values, weights):
            return values

        def blend_fast(plan, values, weights):
            return values
        """,
    "src/repro/cdn/badshm.py": """
        from repro.runner.shm import attach_shared

        def clobber(spec):
            shared = attach_shared(spec)
            arr = shared["matrix"]
            arr[0] = 1.0
            return arr
        """,
}


@pytest.fixture
def violation_repo(tmp_path):
    for rel, source in VIOLATION_FILES.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


class TestCli:
    def test_every_rule_fires_and_exit_is_nonzero(self, violation_repo, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "lint",
                    str(violation_repo / "src"),
                    "--root",
                    str(violation_repo),
                    "--format",
                    "json",
                ]
            )
        assert excinfo.value.code == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["counts"]) == ALL_RULE_IDS
        assert payload["version"] == 1
        assert all(f["path"].startswith("src/") for f in payload["findings"])

    def test_write_baseline_then_clean(self, violation_repo, capsys):
        assert (
            main(
                [
                    "lint",
                    str(violation_repo / "src"),
                    "--root",
                    str(violation_repo),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert (violation_repo / "lint-baseline.json").exists()
        capsys.readouterr()
        assert (
            main(
                [
                    "lint",
                    str(violation_repo / "src"),
                    "--root",
                    str(violation_repo),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "clean" in out
        assert "baselined" in out

    def test_text_format_is_clickable(self, violation_repo, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "lint",
                    str(violation_repo / "src"),
                    "--root",
                    str(violation_repo),
                ]
            )
        out = capsys.readouterr().out
        assert "src/repro/cdn/bad.py:" in out
        assert "RNG001" in out

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", str(tmp_path / "nope"), "--root", str(tmp_path)])
        assert "no such path" in str(excinfo.value)

    def test_missing_explicit_baseline_errors(self, violation_repo):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "lint",
                    str(violation_repo / "src"),
                    "--root",
                    str(violation_repo),
                    "--baseline",
                    str(violation_repo / "absent.json"),
                ]
            )
        assert "does not exist" in str(excinfo.value)


class TestSelfCheck:
    """The gate CI enforces: this repo passes its own invariant lint."""

    def test_src_is_clean_with_committed_baseline(self):
        findings = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        fresh, _ = split_baselined(findings, baseline)
        assert fresh == [], "\n".join(f.render() for f in fresh)

    def test_committed_baseline_is_empty(self):
        """Grandfathering is for emergencies; keep the debt at zero.

        If this test fails you added a finding to the baseline instead
        of fixing it — docs/static-analysis.md explains when that is
        acceptable (and says to update this test's expectation in the
        same PR).
        """
        assert load_baseline(REPO_ROOT / "lint-baseline.json") == set()

    def test_cli_self_check(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out
