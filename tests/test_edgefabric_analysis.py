"""Tests for the Figure 1/2 analyses and the §3.1.1 decomposition."""

import pytest

from repro.errors import AnalysisError
from repro.edgefabric import (
    MeasurementConfig,
    bgp_vs_best_alternate,
    persistence_decomposition,
    route_class_comparison,
    run_measurement,
)
from repro.workloads import generate_client_prefixes


@pytest.fixture(scope="module")
def dataset(small_internet):
    prefixes = generate_client_prefixes(small_internet, 50, seed=3)
    return run_measurement(
        small_internet, prefixes, MeasurementConfig(days=1.0, seed=3)
    )


class TestFig1:
    def test_cdf_fields_consistent(self, dataset):
        result = bgp_vs_best_alternate(dataset)
        assert 0.0 <= result.frac_alternate_better_5ms <= 1.0
        assert 0.0 <= result.frac_bgp_within_1ms <= 1.0
        assert result.frac_bgp_strictly_better <= result.frac_bgp_within_1ms

    def test_band_brackets_central_cdf(self, dataset):
        """At any x, lower-bound CDF >= central >= upper-bound CDF."""
        result = bgp_vs_best_alternate(dataset)
        for x in (-5.0, 0.0, 5.0):
            assert (
                result.cdf_lower.fraction_at_most(x)
                >= result.cdf.fraction_at_most(x)
                >= result.cdf_upper.fraction_at_most(x)
            )

    def test_mass_concentrated_near_zero(self, dataset):
        """The paper's Figure 1 shape: most traffic within ±10 ms."""
        result = bgp_vs_best_alternate(dataset)
        central = result.cdf.fraction_at_most(10.0) - result.cdf.fraction_at_most(
            -10.0
        )
        assert central > 0.6

    def test_alternate_improvement_is_minority(self, dataset):
        result = bgp_vs_best_alternate(dataset)
        assert result.frac_alternate_better_5ms < 0.2

    def test_requires_alternates(self, dataset):

        import repro.edgefabric.dataset as ds_mod

        narrow = ds_mod.EgressDataset(
            pairs=dataset.pairs,
            times_h=dataset.times_h,
            medians=dataset.medians[:, :, :1],
            ci_half=dataset.ci_half[:, :, :1],
            volumes=dataset.volumes,
            max_routes=1,
        )
        with pytest.raises(AnalysisError):
            bgp_vs_best_alternate(narrow)


class TestFig2:
    def test_both_comparisons_present(self, dataset):
        result = route_class_comparison(dataset)
        assert result.peer_vs_transit.xs.size > 0
        assert result.private_vs_public.xs.size > 0

    def test_classes_perform_similarly(self, dataset):
        """Figure 2's takeaway: transit ≈ peer, public ≈ private."""
        result = route_class_comparison(dataset)
        assert abs(result.peer_vs_transit.median) < 10.0
        assert abs(result.private_vs_public.median) < 10.0
        assert result.frac_transit_within_5ms > 0.5
        assert result.frac_public_within_5ms > 0.5


class TestPersistence:
    def test_fractions_partition(self, dataset):
        result = persistence_decomposition(dataset)
        total = (
            result.frac_pairs_never
            + result.frac_pairs_persistent
            + result.frac_pairs_transient
        )
        assert total == pytest.approx(1.0)

    def test_degrade_together_signal(self, dataset):
        """Most pairs never beat BGP, and degradations co-occur."""
        result = persistence_decomposition(dataset)
        assert result.frac_pairs_never > 0.5
        assert result.degradation_co_occurrence > 0.3
        assert result.median_route_correlation > 0.3

    def test_threshold_validation(self, dataset):
        with pytest.raises(AnalysisError):
            persistence_decomposition(dataset, threshold_ms=0.0)

    def test_higher_threshold_fewer_winners(self, dataset):
        strict = persistence_decomposition(dataset, threshold_ms=20.0)
        loose = persistence_decomposition(dataset, threshold_ms=2.0)
        assert strict.frac_pairs_never >= loose.frac_pairs_never
