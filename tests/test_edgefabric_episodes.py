"""Tests for degradation-episode extraction (§3.1.1)."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.edgefabric import (
    MeasurementConfig,
    extract_episodes,
    run_measurement,
)
from repro.edgefabric.episodes import _runs
from repro.workloads import generate_client_prefixes


@pytest.fixture(scope="module")
def dataset(small_internet):
    prefixes = generate_client_prefixes(small_internet, 40, seed=3)
    return run_measurement(
        small_internet, prefixes, MeasurementConfig(days=1.0, seed=3)
    )


class TestRuns:
    def test_single_run(self):
        mask = np.array([False, True, True, False])
        excess = np.array([0.0, 2.0, 5.0, 0.0])
        runs = _runs(mask, excess, pair_index=7)
        assert len(runs) == 1
        episode = runs[0]
        assert (episode.start, episode.length) == (1, 2)
        assert episode.peak_ms == 5.0
        assert episode.pair_index == 7

    def test_run_to_end(self):
        mask = np.array([True, False, True, True])
        excess = np.array([1.0, 0.0, 2.0, 3.0])
        runs = _runs(mask, excess, pair_index=0)
        assert [(r.start, r.length) for r in runs] == [(0, 1), (2, 2)]

    def test_empty(self):
        assert _runs(np.zeros(5, dtype=bool), np.zeros(5), 0) == []


class TestExtractEpisodes:
    def test_structure(self, dataset):
        result = extract_episodes(dataset)
        for episode in result.degradation_episodes:
            assert 0 <= episode.pair_index < dataset.n_pairs
            assert episode.length >= 1
            assert episode.start + episode.length <= dataset.n_windows
            assert episode.peak_ms > result.threshold_ms

    def test_shares_bounded(self, dataset):
        result = extract_episodes(dataset)
        assert 0.0 <= result.degradation_window_share <= 1.0
        assert 0.0 <= result.opportunity_window_share <= 1.0
        assert 0.0 <= result.frac_degradations_with_escape <= 1.0

    def test_paper_ordering(self, dataset):
        """§3.1.1: degradations are more prevalent than opportunities."""
        result = extract_episodes(dataset)
        assert (
            result.degradation_window_share
            >= result.opportunity_window_share * 0.8
        )

    def test_durations_in_minutes(self, dataset):
        result = extract_episodes(dataset)
        if result.degradation_episodes:
            # 15-minute windows: durations are multiples of 15.
            assert result.median_degradation_minutes % 15.0 == pytest.approx(0.0)

    def test_higher_threshold_fewer_episodes(self, dataset):
        loose = extract_episodes(dataset, threshold_ms=2.0)
        strict = extract_episodes(dataset, threshold_ms=20.0)
        assert len(strict.degradation_episodes) <= len(loose.degradation_episodes)
        assert strict.degradation_window_share <= loose.degradation_window_share

    def test_validation(self, dataset):
        with pytest.raises(AnalysisError):
            extract_episodes(dataset, threshold_ms=0.0)
