"""Tests for the capacity-driven egress override controller."""

import pytest

from repro.errors import AnalysisError
from repro.edgefabric import (
    MeasurementConfig,
    replay_capacity_controller,
    run_measurement,
)
from repro.workloads import generate_client_prefixes


@pytest.fixture(scope="module")
def dataset(small_internet):
    prefixes = generate_client_prefixes(small_internet, 40, seed=3)
    return run_measurement(
        small_internet, prefixes, MeasurementConfig(days=0.5, seed=3)
    )


class TestCapacityController:
    def test_low_traffic_few_overrides(self, small_internet, dataset):
        result = replay_capacity_controller(
            small_internet, dataset, total_traffic_gbps=100.0
        )
        assert result.frac_windows_with_override < 0.1
        assert result.frac_drops == 0.0

    def test_overrides_grow_with_traffic(self, small_internet, dataset):
        light = replay_capacity_controller(
            small_internet, dataset, total_traffic_gbps=500.0
        )
        heavy = replay_capacity_controller(
            small_internet, dataset, total_traffic_gbps=8000.0
        )
        assert (
            heavy.frac_windows_with_override
            >= light.frac_windows_with_override
        )

    def test_detour_cost_is_small(self, small_internet, dataset):
        """The paper's enabling fact: overriding BGP for capacity is
        cheap because alternates perform like preferred routes."""
        result = replay_capacity_controller(
            small_internet, dataset, total_traffic_gbps=4000.0
        )
        assert abs(result.median_detour_cost_ms) < 5.0

    def test_fractions_bounded(self, small_internet, dataset):
        result = replay_capacity_controller(
            small_internet, dataset, total_traffic_gbps=4000.0
        )
        assert 0.0 <= result.frac_windows_with_override <= 1.0
        assert 0.0 <= result.frac_traffic_detoured <= 1.0
        assert 0.0 <= result.frac_drops <= 1.0

    def test_tighter_target_more_overrides(self, small_internet, dataset):
        loose = replay_capacity_controller(
            small_internet, dataset, total_traffic_gbps=3000.0, utilization_target=0.95
        )
        tight = replay_capacity_controller(
            small_internet, dataset, total_traffic_gbps=3000.0, utilization_target=0.3
        )
        assert (
            tight.frac_windows_with_override
            >= loose.frac_windows_with_override
        )

    def test_validation(self, small_internet, dataset):
        with pytest.raises(AnalysisError):
            replay_capacity_controller(
                small_internet, dataset, utilization_target=0.0
            )
        with pytest.raises(AnalysisError):
            replay_capacity_controller(
                small_internet, dataset, total_traffic_gbps=0.0
            )
