"""Tests for the catchment-map operator view."""

import pytest

from repro.errors import AnalysisError
from repro.cdn import CdnDeployment, catchment_map
from repro.workloads import generate_client_prefixes


@pytest.fixture(scope="module")
def cmap(small_internet):
    deployment = CdnDeployment(small_internet)
    prefixes = generate_client_prefixes(small_internet, 60, seed=23)
    return catchment_map(deployment, prefixes)


class TestCatchmentMap:
    def test_shares_partition(self, cmap):
        total = sum(e.traffic_share for e in cmap.entries)
        assert total + cmap.frac_unreachable == pytest.approx(1.0, abs=1e-9)

    def test_sorted_by_share(self, cmap):
        shares = [e.traffic_share for e in cmap.entries]
        assert shares == sorted(shares, reverse=True)

    def test_entries_reference_front_ends(self, cmap, small_internet):
        codes = set(small_internet.wan.pop_codes)
        for entry in cmap.entries:
            assert entry.pop_code in codes
            assert entry.n_prefixes >= 1
            assert entry.median_client_km <= entry.p90_client_km + 1e-9
            assert 0.0 <= entry.frac_misdirected <= 1.0

    def test_global_stats(self, cmap):
        assert cmap.global_median_km >= 0
        assert 0.0 <= cmap.global_frac_misdirected <= 1.0

    def test_entry_lookup(self, cmap):
        first = cmap.entries[0]
        assert cmap.entry(first.pop_code) is first
        with pytest.raises(AnalysisError):
            cmap.entry("zzz")

    def test_render(self, cmap):
        text = cmap.render(top=3)
        assert "front-end" in text
        assert cmap.entries[0].pop_code in text

    def test_requires_prefixes(self, small_internet):
        with pytest.raises(AnalysisError):
            catchment_map(CdnDeployment(small_internet), [])

    def test_misdirection_matches_pathologies(self, cmap):
        """Misdirected traffic exists iff some entry reports it."""
        any_misdirected = any(e.frac_misdirected > 0 for e in cmap.entries)
        assert (cmap.global_frac_misdirected > 0) == any_misdirected
