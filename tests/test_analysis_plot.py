"""Tests for ASCII figure rendering."""

import pytest

from repro.errors import AnalysisError
from repro.analysis import ascii_cdf_figure, ascii_plot, weighted_cdf, weighted_ccdf


class TestAsciiPlot:
    def test_basic_structure(self):
        cdf = weighted_cdf([1.0, 2.0, 3.0, 4.0])
        out = ascii_plot({"s": cdf}, width=32, height=8)
        lines = out.splitlines()
        assert len(lines) == 8 + 3  # plot rows + axis + ticks + legend
        assert "*" in out
        assert "1.00" in out and "0.00" in out

    def test_multiple_series_distinct_markers(self):
        a = weighted_cdf([1.0, 2.0])
        b = weighted_cdf([2.0, 3.0])
        out = ascii_plot({"a": a, "b": b}, width=24, height=6)
        assert "*" in out and "o" in out
        assert "a" in out and "b" in out

    def test_x_range_clamps(self):
        cdf = weighted_cdf([100.0, 200.0])
        out = ascii_plot({"s": cdf}, x_range=(0.0, 10.0), width=20, height=5)
        # All mass is right of the window: curve pinned at 0.
        assert "10" in out

    def test_monotone_curve(self):
        """A CDF rendered left-to-right never goes down."""
        cdf = weighted_cdf(list(range(50)))
        out = ascii_plot({"s": cdf}, width=40, height=12)
        rows = [line[6:] for line in out.splitlines()[:12]]
        last_row_for_col = {}
        for r, row in enumerate(rows):
            for c, ch in enumerate(row):
                if ch == "*":
                    last_row_for_col[c] = r
        cols = sorted(last_row_for_col)
        # Row index decreases (moves up) as the column increases.
        values = [last_row_for_col[c] for c in cols]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_ccdf_plots_survival(self):
        ccdf = weighted_ccdf([1.0, 2.0, 3.0])
        out = ascii_plot({"tail": ccdf}, width=24, height=6)
        assert "tail" in out

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ascii_plot({})
        cdf = weighted_cdf([1.0])
        with pytest.raises(AnalysisError):
            ascii_plot({"s": cdf}, width=4, height=2)


class TestFigure:
    def test_title_and_label(self):
        cdf = weighted_cdf([1.0, 2.0])
        out = ascii_cdf_figure({"s": cdf}, "My Figure", "x (ms)")
        assert out.startswith("My Figure\n=")
        assert "x (ms)" in out
