"""Tests for the grooming-transfer study (§3.2.2)."""

import pytest

from repro.errors import AnalysisError
from repro.cdn import grooming_transfer_study
from repro.workloads import generate_client_prefixes


@pytest.fixture(scope="module")
def populations(small_internet):
    train = generate_client_prefixes(small_internet, 60, seed=31)
    fresh = generate_client_prefixes(small_internet, 60, seed=32)
    return train, fresh


class TestGroomingTransfer:
    @pytest.fixture(scope="class")
    def result(self, small_internet, populations):
        train, fresh = populations
        return grooming_transfer_study(
            small_internet, train, fresh, max_actions=10
        )

    def test_efficiency_bounded(self, result):
        assert 0.0 <= result.transfer_efficiency <= 1.0

    def test_own_grooming_at_least_transferred(self, result):
        assert result.eval_own_groomed >= result.eval_transferred - 0.05

    def test_transfer_does_not_hurt_much(self, result):
        """Suppressions learned elsewhere are topology properties; they
        should not noticeably hurt a fresh population."""
        assert result.eval_transferred >= result.eval_ungroomed - 0.05

    def test_same_population_transfers_perfectly(self, small_internet, populations):
        """A re-announced prefix serving the same clients inherits the
        grooming wholesale."""
        train, _ = populations
        result = grooming_transfer_study(
            small_internet, train, train, max_actions=10
        )
        assert result.transfer_efficiency == pytest.approx(1.0, abs=0.05)

    def test_validation(self, small_internet, populations):
        train, fresh = populations
        with pytest.raises(AnalysisError):
            grooming_transfer_study(small_internet, [], fresh)
        with pytest.raises(AnalysisError):
            grooming_transfer_study(small_internet, train, [])
