"""Tests for route-selection strategies over the egress dataset."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.edgefabric import (
    MeasurementConfig,
    achieved_medians,
    bgp_policy_choice,
    omniscient_choice,
    run_measurement,
    static_best_choice,
)
from repro.workloads import generate_client_prefixes


@pytest.fixture(scope="module")
def dataset(small_internet):
    prefixes = generate_client_prefixes(small_internet, 40, seed=3)
    return run_measurement(
        small_internet, prefixes, MeasurementConfig(days=0.5, seed=3)
    )


class TestChoices:
    def test_bgp_always_rank_zero(self, dataset):
        choice = bgp_policy_choice(dataset)
        assert (choice == 0).all()

    def test_omniscient_is_argmin(self, dataset):
        choice = omniscient_choice(dataset)
        achieved = achieved_medians(dataset, choice)
        assert achieved == pytest.approx(
            np.nanmin(dataset.medians, axis=2), nan_ok=True
        )

    def test_static_best_constant_per_pair(self, dataset):
        choice = static_best_choice(dataset)
        assert (choice == choice[:, :1]).all()

    def test_choice_indices_valid(self, dataset):
        for chooser in (bgp_policy_choice, omniscient_choice, static_best_choice):
            choice = chooser(dataset)
            assert choice.min() >= 0
            assert choice.max() < dataset.max_routes


class TestAchieved:
    def test_shape_check(self, dataset):
        with pytest.raises(AnalysisError):
            achieved_medians(dataset, np.zeros((1, 1), dtype=int))

    def test_ordering_invariant(self, dataset):
        """Omniscient <= static-best and omniscient <= BGP, everywhere."""
        omni = achieved_medians(dataset, omniscient_choice(dataset))
        bgp = achieved_medians(dataset, bgp_policy_choice(dataset))
        static = achieved_medians(dataset, static_best_choice(dataset))
        assert (omni <= bgp + 1e-9).all()
        assert (omni <= static + 1e-9).all()

    def test_omniscient_gain_is_small(self, dataset):
        """The paper's headline: the omniscient controller barely beats
        BGP in the volume-weighted median."""
        omni = achieved_medians(dataset, omniscient_choice(dataset))
        bgp = achieved_medians(dataset, bgp_policy_choice(dataset))
        weights = dataset.volumes
        gain = np.average(bgp - omni, weights=weights)
        assert 0.0 <= gain < 5.0
