"""Tests for per-PoP egress route computation."""

import pytest

from repro.errors import RoutingError
from repro.bgp import RouteClass
from repro.edgefabric import egress_routes_at_pop, serving_pop
from repro.edgefabric.routes import tables_for_destinations
from repro.workloads import generate_client_prefixes


@pytest.fixture(scope="module")
def setup(small_internet):
    prefixes = generate_client_prefixes(small_internet, 40, seed=3)
    tables = tables_for_destinations(small_internet, [p.asn for p in prefixes])
    return prefixes, tables


class TestServingPop:
    def test_nearest_pop(self, small_internet, setup):
        prefixes, _ = setup
        for prefix in prefixes[:10]:
            pop = serving_pop(small_internet, prefix)
            best = min(
                small_internet.wan.pops,
                key=lambda p: prefix.city.distance_km(p.city),
            )
            assert prefix.city.distance_km(pop.city) == pytest.approx(
                prefix.city.distance_km(best.city)
            )


class TestEgressRoutes:
    def test_routes_ranked_and_annotated(self, small_internet, setup):
        prefixes, tables = setup
        found_any = False
        for prefix in prefixes:
            pop = serving_pop(small_internet, prefix)
            routes = egress_routes_at_pop(
                small_internet, tables[prefix.asn], pop, prefix, k=3
            )
            if not routes:
                continue
            found_any = True
            assert [r.bgp_rank for r in routes] == list(range(len(routes)))
            for route in routes:
                assert route.pop_code == pop.code
                assert route.dest_asn == prefix.asn
                assert route.as_path[0] == small_internet.provider_asn
                assert route.as_path[1] == route.neighbor
                assert route.as_path[-1] == prefix.asn
                assert route.base_one_way_ms > 0
                assert route.route_class in RouteClass
        assert found_any

    def test_candidates_limited_to_pop(self, small_internet, setup):
        """Every returned route's egress link interconnects at the PoP."""
        prefixes, tables = setup
        for prefix in prefixes[:15]:
            pop = serving_pop(small_internet, prefix)
            for route in egress_routes_at_pop(
                small_internet, tables[prefix.asn], pop, prefix
            ):
                link = small_internet.graph.link(
                    small_internet.provider_asn, route.neighbor
                )
                assert pop.city in link.cities

    def test_rank_zero_is_most_preferred_class(self, small_internet, setup):
        """The BGP-preferred route has the highest local-pref class."""
        order = {
            RouteClass.CUSTOMER: 0,
            RouteClass.PRIVATE_PEER: 1,
            RouteClass.PUBLIC_PEER: 2,
            RouteClass.TRANSIT: 3,
        }
        prefixes, tables = setup
        for prefix in prefixes:
            pop = serving_pop(small_internet, prefix)
            routes = egress_routes_at_pop(
                small_internet, tables[prefix.asn], pop, prefix
            )
            for earlier, later in zip(routes[:-1], routes[1:]):
                assert order[earlier.route_class] <= order[later.route_class]

    def test_k_limits_output(self, small_internet, setup):
        prefixes, tables = setup
        for prefix in prefixes[:10]:
            pop = serving_pop(small_internet, prefix)
            routes = egress_routes_at_pop(
                small_internet, tables[prefix.asn], pop, prefix, k=2
            )
            assert len(routes) <= 2

    def test_wrong_table_rejected(self, small_internet, setup):
        prefixes, tables = setup
        a, b = prefixes[0], next(p for p in prefixes if p.asn != prefixes[0].asn)
        pop = serving_pop(small_internet, a)
        with pytest.raises(RoutingError):
            egress_routes_at_pop(small_internet, tables[b.asn], pop, a)


class TestTablesForDestinations:
    def test_deduplicates(self, small_internet):
        asns = [small_internet.eyeball_asns[0]] * 3
        tables = tables_for_destinations(small_internet, asns)
        assert len(tables) == 1

    def test_origin_correct(self, small_internet):
        asn = small_internet.eyeball_asns[0]
        tables = tables_for_destinations(small_internet, [asn])
        assert tables[asn].origin == asn
