"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AnalysisError,
    MeasurementError,
    ReproError,
    RoutingError,
    TopologyError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc", [TopologyError, RoutingError, MeasurementError, AnalysisError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise RoutingError("boom")

    def test_distinct_categories(self):
        with pytest.raises(TopologyError):
            raise TopologyError("t")
        assert not issubclass(TopologyError, RoutingError)

    def test_library_raises_repro_errors_only(self):
        """A representative sample of failure paths all surface as
        ReproError subclasses, so callers can catch one base type."""
        from repro.geo import city_named
        from repro.topology import ASGraph
        from repro.analysis import weighted_cdf

        graph = ASGraph()
        for trigger in (
            lambda: city_named("Atlantis"),
            lambda: graph.get(42),
            lambda: weighted_cdf([]),
        ):
            with pytest.raises(ReproError):
                trigger()
