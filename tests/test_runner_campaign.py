"""Tests for the campaign runner: parallelism, caching, retry, timeout.

Stub studies live at module scope so worker processes can resolve them
by import path; cross-process state (crash-once behavior, run counting)
goes through sentinel files under ``tmp_path``.
"""

import dataclasses
import os
import time
import uuid
from pathlib import Path

import pytest

from repro import obs
from repro.errors import RunnerError
from repro.core.study import StudyResult
from repro.runner import CampaignRunner, JobSpec, ResultStore, run_campaign


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with tracing disabled."""
    obs.disable()
    yield
    obs.disable()


@dataclasses.dataclass
class AddStudy:
    """Instant stub: summary is a deterministic function of the config."""

    seed: int = 0
    offset: float = 1.0
    trace_dir: str = ""

    def run(self) -> StudyResult:
        if self.trace_dir:
            # One uniquely-named file per simulation, so tests can count
            # how many actually executed (cache hits leave no trace).
            Path(self.trace_dir, f"run-{uuid.uuid4().hex}").touch()
        return StudyResult(
            name="add",
            summary={"value": self.seed + self.offset, "seed": float(self.seed)},
        )


@dataclasses.dataclass
class FlakyStudy:
    """Raises until its sentinel file exists, then succeeds."""

    seed: int = 0
    sentinel: str = ""

    def run(self) -> StudyResult:
        path = Path(self.sentinel)
        if not path.exists():
            path.touch()
            raise RuntimeError("transient failure")
        return StudyResult(name="flaky", summary={"ok": 1.0})


@dataclasses.dataclass
class CrashOnceStudy:
    """Hard-kills its worker process once, then succeeds."""

    seed: int = 0
    sentinel: str = ""

    def run(self) -> StudyResult:
        path = Path(self.sentinel)
        if not path.exists():
            path.touch()
            os._exit(1)
        return StudyResult(name="crash-once", summary={"ok": 1.0})


@dataclasses.dataclass
class AlwaysFailsStudy:
    seed: int = 0

    def run(self) -> StudyResult:
        raise RuntimeError("permanent failure")


@dataclasses.dataclass
class SlowStudy:
    seed: int = 0
    sleep_s: float = 30.0

    def run(self) -> StudyResult:
        time.sleep(self.sleep_s)
        return StudyResult(name="slow", summary={"ok": 1.0})


@dataclasses.dataclass
class SlowOnceStudy:
    """Sleeps long on the first run (before its sentinel exists), then fast."""

    seed: int = 0
    sentinel: str = ""
    sleep_s: float = 2.0

    def run(self) -> StudyResult:
        path = Path(self.sentinel)
        if not path.exists():
            path.touch()
            time.sleep(self.sleep_s)
        return StudyResult(name="slow-once", summary={"ok": 1.0})


def _count_runs(trace_dir) -> int:
    return len(list(Path(trace_dir).glob("run-*")))


def _specs(tmp_path, seeds):
    trace = tmp_path / "trace"
    trace.mkdir(exist_ok=True)
    return [
        JobSpec.from_study(AddStudy(seed=s, trace_dir=str(trace))) for s in seeds
    ], trace


class TestExecution:
    def test_serial_results_in_spec_order(self, tmp_path):
        specs, _ = _specs(tmp_path, [3, 1, 2])
        report = CampaignRunner(jobs=1).run(specs)
        assert [r.summary["seed"] for r in report.results] == [3.0, 1.0, 2.0]
        assert report.n_ran == 3 and report.n_hits == 0
        assert all(m.status == "ran" and m.attempts == 1 for m in report.metrics)

    def test_parallel_matches_serial(self, tmp_path):
        specs, _ = _specs(tmp_path, range(6))
        serial = CampaignRunner(jobs=1).run(specs)
        parallel = CampaignRunner(jobs=3).run(specs)
        assert [r.summary for r in parallel.results] == [
            r.summary for r in serial.results
        ]

    def test_invalid_construction(self):
        with pytest.raises(RunnerError):
            CampaignRunner(jobs=0)
        with pytest.raises(RunnerError):
            CampaignRunner(retries=-1)
        with pytest.raises(RunnerError):
            CampaignRunner(batch_size=0)

    def test_batched_matches_serial(self, tmp_path):
        specs, _ = _specs(tmp_path, range(7))
        serial = CampaignRunner(jobs=1).run(specs)
        batched = CampaignRunner(jobs=2, batch_size=3).run(specs)
        assert [r.summary for r in batched.results] == [
            r.summary for r in serial.results
        ]
        assert batched.n_ran == 7
        assert [m.index for m in batched.metrics] == list(range(7))

    def test_batched_preserves_per_spec_cache_entries(self, tmp_path):
        specs, _ = _specs(tmp_path, range(5))
        store = ResultStore(tmp_path / "cache")
        first = CampaignRunner(jobs=2, batch_size=2, store=store).run(specs)
        assert first.n_ran == 5
        # Every spec got its own cache entry despite batched submission:
        # a serial re-run hits for all of them.
        again = CampaignRunner(jobs=1, store=ResultStore(tmp_path / "cache")).run(
            specs
        )
        assert again.n_hits == 5 and again.n_ran == 0

    def test_batch_larger_than_pending(self, tmp_path):
        specs, _ = _specs(tmp_path, range(3))
        report = CampaignRunner(jobs=2, batch_size=10).run(specs)
        assert [r.summary["seed"] for r in report.results] == [0.0, 1.0, 2.0]

    def test_run_campaign_wrapper(self, tmp_path):
        report = run_campaign(
            [AddStudy(seed=1), AddStudy(seed=2)],
            jobs=1,
            cache_dir=tmp_path / "cache",
        )
        assert report.n_ran == 2
        again = run_campaign(
            [AddStudy(seed=1), AddStudy(seed=2)],
            jobs=1,
            cache_dir=tmp_path / "cache",
        )
        assert again.n_hits == 2 and again.n_ran == 0


class TestCaching:
    def test_second_run_all_hits_zero_simulations(self, tmp_path):
        specs, trace = _specs(tmp_path, range(4))
        store = ResultStore(tmp_path / "cache")
        first = CampaignRunner(jobs=2, store=store).run(specs)
        assert first.n_ran == 4
        assert _count_runs(trace) == 4
        second = CampaignRunner(jobs=2, store=store).run(specs)
        assert second.n_hits == 4 and second.n_ran == 0
        assert _count_runs(trace) == 4  # nothing re-simulated
        assert [r.summary for r in second.results] == [
            r.summary for r in first.results
        ]
        assert second.saved_s >= 0.0
        assert "4 cache hits, 0 ran" in second.render()

    def test_changed_config_misses(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = JobSpec.from_study(AddStudy(seed=1, offset=1.0))
        CampaignRunner(store=store).run([spec])
        changed = JobSpec.from_study(AddStudy(seed=1, offset=2.0))
        report = CampaignRunner(store=store).run([spec, changed])
        statuses = [m.status for m in report.metrics]
        assert statuses == ["hit", "ran"]
        assert report.results[1].summary["value"] == 3.0

    def test_corrupted_entry_reruns(self, tmp_path):
        specs, trace = _specs(tmp_path, [5])
        store = ResultStore(tmp_path / "cache")
        CampaignRunner(store=store).run(specs)
        store.path_for(specs[0]).write_text("garbage", encoding="utf-8")
        report = CampaignRunner(store=store).run(specs)
        assert report.metrics[0].status == "ran"
        assert _count_runs(trace) == 2
        # ...and the re-run repaired the entry.
        assert store.get(specs[0]) is not None


class TestRetry:
    def test_flaky_job_retries_then_succeeds_inline(self, tmp_path):
        spec = JobSpec.from_study(
            FlakyStudy(sentinel=str(tmp_path / "flaky-inline"))
        )
        report = CampaignRunner(jobs=1, retries=2, backoff_s=0.0).run([spec])
        assert report.results[0].summary == {"ok": 1.0}
        assert report.metrics[0].attempts == 2

    def test_flaky_job_retries_then_succeeds_in_pool(self, tmp_path):
        specs = [
            JobSpec.from_study(AddStudy(seed=0)),
            JobSpec.from_study(
                FlakyStudy(sentinel=str(tmp_path / "flaky-pool"))
            ),
        ]
        report = CampaignRunner(jobs=2, retries=2, backoff_s=0.0).run(specs)
        assert report.results[1].summary == {"ok": 1.0}
        assert report.metrics[1].attempts == 2
        assert report.n_retries == 1

    def test_crashed_worker_restarts_pool_and_retries(self, tmp_path):
        specs = [
            JobSpec.from_study(
                CrashOnceStudy(seed=s, sentinel=str(tmp_path / f"crash-{s}"))
            )
            for s in range(2)
        ]
        report = CampaignRunner(jobs=2, retries=3, backoff_s=0.0).run(specs)
        assert all(r.summary == {"ok": 1.0} for r in report.results)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retry_budget_exhausted_raises(self, jobs):
        specs = [
            JobSpec.from_study(AlwaysFailsStudy(seed=s)) for s in range(jobs)
        ]
        runner = CampaignRunner(jobs=jobs, retries=1, backoff_s=0.0)
        with pytest.raises(RunnerError, match="after 2 attempt"):
            runner.run(specs)

    def test_timeout_counts_as_failure(self, tmp_path):
        specs = [JobSpec.from_study(SlowStudy(sleep_s=30.0))]
        runner = CampaignRunner(jobs=2, retries=0, timeout_s=0.2, backoff_s=0.0)
        start = time.perf_counter()
        with pytest.raises(RunnerError, match="timed out"):
            runner.run(specs + [JobSpec.from_study(AddStudy(seed=0))])
        assert time.perf_counter() - start < 10.0


class TestTelemetry:
    @staticmethod
    def _job_ends():
        return [
            e
            for e in obs.events()
            if e["kind"] == "span_end" and e["name"] == "runner.job"
        ]

    def test_worker_spans_cross_process_boundary(self):
        """jobs=4 campaign: spans recorded *inside* workers reach the
        orchestrator's merged stream, stamped with the workers' pids."""
        specs = [
            JobSpec.from_study(SlowStudy(seed=s, sleep_s=0.4)) for s in range(4)
        ]
        obs.enable()
        report = CampaignRunner(jobs=4).run(specs)
        assert report.n_ran == 4
        ends = self._job_ends()
        assert len(ends) == 4
        worker_pids = {e["pid"] for e in ends}
        assert os.getpid() not in worker_pids
        assert len(worker_pids) >= 2  # genuinely parallel processes
        run_id = obs.current_run_id()
        assert all(e["run"] == run_id for e in ends)
        for event in obs.events():
            obs.validate_event(event)

    def test_inline_tracing_tees_without_duplicates(self):
        specs = [JobSpec.from_study(AddStudy(seed=s)) for s in range(3)]
        obs.enable()
        CampaignRunner(jobs=1).run(specs)
        ends = self._job_ends()
        assert len(ends) == 3  # teed once, not re-ingested
        assert {e["pid"] for e in ends} == {os.getpid()}

    def test_tracing_disabled_campaign_emits_nothing(self):
        specs = [JobSpec.from_study(AddStudy(seed=s)) for s in range(2)]
        CampaignRunner(jobs=2).run(specs)
        assert obs.events() == []

    def test_cache_hit_replays_recorded_events(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        specs = [JobSpec.from_study(AddStudy(seed=9))]
        obs.enable()
        CampaignRunner(store=store).run(specs)
        first_ends = self._job_ends()
        assert len(first_ends) == 1 and "replay" not in first_ends[0]
        obs.disable()

        obs.enable()
        report = CampaignRunner(store=store).run(specs)
        assert report.n_hits == 1
        replayed = self._job_ends()
        assert len(replayed) == 1 and replayed[0]["replay"] is True
        counters = [e for e in obs.events() if e["kind"] == "counter"]
        assert any(e["name"] == "runner.cache.hits" for e in counters)

    def test_attempt_timings_recorded_per_retry(self, tmp_path):
        spec = JobSpec.from_study(
            FlakyStudy(sentinel=str(tmp_path / "flaky-attempts"))
        )
        report = CampaignRunner(jobs=1, retries=2, backoff_s=0.0).run([spec])
        metric = report.metrics[0]
        assert metric.attempts == 2
        assert len(metric.attempt_s) == 2
        assert all(a >= 0.0 for a in metric.attempt_s)
        assert metric.elapsed_s >= sum(metric.attempt_s)

    def test_timeout_attempts_surface_in_metrics(self, tmp_path):
        specs = [
            JobSpec.from_study(AddStudy(seed=0)),
            JobSpec.from_study(
                SlowOnceStudy(sentinel=str(tmp_path / "slow-once"), sleep_s=2.0)
            ),
        ]
        runner = CampaignRunner(jobs=2, retries=1, timeout_s=0.5, backoff_s=0.0)
        report = runner.run(specs)
        metric = report.metrics[1]
        assert metric.timeouts == 1
        assert metric.attempts == 2
        assert len(metric.attempt_s) == 2
        assert report.n_timeouts == 1
        assert "1 timeouts" in report.render()


class TestReport:
    def test_render_mentions_every_job(self, tmp_path):
        specs, _ = _specs(tmp_path, [1, 2])
        report = CampaignRunner().run(specs)
        text = report.render()
        assert "2 jobs" in text
        assert "AddStudy(seed=1)" in text and "AddStudy(seed=2)" in text
        for metric in report.metrics:
            assert metric.spec_hash[:12] in text


class TestDegradedJobs:
    """allow_partial: jobs that exhaust their retries become entries in
    the report's degraded section instead of aborting the campaign."""

    def test_allow_partial_records_degraded_job(self, tmp_path):
        specs, trace = _specs(tmp_path, [0])
        specs.insert(1, JobSpec.from_study(AlwaysFailsStudy()))
        specs.append(JobSpec.from_study(AddStudy(seed=1, trace_dir=str(trace))))
        report = CampaignRunner(
            retries=1, backoff_s=0.0, allow_partial=True
        ).run(specs)
        assert report.partial and report.n_degraded == 1
        degraded = report.degraded[0]
        assert degraded.index == 1
        assert degraded.reason == "retries-exhausted"
        assert degraded.attempts == 2
        assert "permanent failure" in degraded.error
        # The healthy jobs still completed around the failure.
        assert report.results[0].summary["value"] == 1.0
        assert report.results[1] is None
        assert report.results[2].summary["value"] == 2.0
        assert report.metrics[1].status == "failed"
        assert "PARTIAL" in report.render()
        assert "retries-exhausted" in report.render()

    def test_allow_partial_in_pool_mode(self, tmp_path):
        specs, _ = _specs(tmp_path, [0, 1])
        specs.append(JobSpec.from_study(AlwaysFailsStudy()))
        report = CampaignRunner(
            jobs=2, retries=0, backoff_s=0.0, allow_partial=True
        ).run(specs)
        assert report.n_degraded == 1 and report.n_ran == 2
        assert report.degraded[0].index == 2

    def test_retry_budget_exhausted_reason(self, tmp_path):
        spec = JobSpec.from_study(
            FlakyStudy(sentinel=str(tmp_path / "budgeted"))
        )
        report = CampaignRunner(
            retries=2, retry_budget=0, backoff_s=0.0, allow_partial=True
        ).run([spec])
        assert report.degraded[0].reason == "retry-budget-exhausted"
        assert report.degraded[0].attempts == 1

    def test_retry_budget_is_campaign_wide(self, tmp_path):
        specs = [
            JobSpec.from_study(FlakyStudy(seed=s, sentinel=str(tmp_path / f"b{s}")))
            for s in range(2)
        ]
        report = CampaignRunner(
            retries=2, retry_budget=1, backoff_s=0.0, allow_partial=True
        ).run(specs)
        # The first flaky job consumed the only retry and succeeded; the
        # second had nothing left to retry with.
        assert report.metrics[0].status == "ran"
        assert report.metrics[0].attempts == 2
        assert report.degraded[0].index == 1
        assert report.degraded[0].reason == "retry-budget-exhausted"

    def test_without_allow_partial_failure_still_aborts(self):
        runner = CampaignRunner(retries=0, backoff_s=0.0)
        with pytest.raises(RunnerError, match="after 1 attempt"):
            runner.run([JobSpec.from_study(AlwaysFailsStudy())])


class TestCircuitBreaker:
    """A platform failing consistently is dropped, not hammered."""

    def test_breaker_opens_and_degrades_remaining_jobs(self, tmp_path):
        specs = [JobSpec.from_study(AlwaysFailsStudy(seed=s)) for s in range(5)]
        report = CampaignRunner(
            retries=0,
            backoff_s=0.0,
            allow_partial=True,
            breaker_threshold=1.0,
            breaker_min_attempts=2,
        ).run(specs)
        assert report.n_degraded == 5
        reasons = [d.reason for d in report.degraded]
        platform = specs[0].platform
        # Job 0 exhausts normally; job 1's failure trips the breaker (2/2
        # attempts failed), so it and everything after degrade as blocked.
        assert reasons[0] == "retries-exhausted"
        assert reasons[1:] == [f"breaker-open:{platform}"] * 4
        # Jobs behind the open breaker were never even dispatched.
        assert all(d.attempts == 0 for d in report.degraded[2:])

    def test_breaker_counts_recovered_attempts(self, tmp_path):
        # Flaky jobs fail once each; enough first-attempt failures push
        # the platform's rate over the threshold even though every job
        # eventually succeeded — the breaker then blocks the remainder.
        specs = [
            JobSpec.from_study(FlakyStudy(seed=s, sentinel=str(tmp_path / f"f{s}")))
            for s in range(3)
        ]
        specs.append(JobSpec.from_study(AddStudy(seed=0)))
        report = CampaignRunner(
            retries=2,
            backoff_s=0.0,
            allow_partial=True,
            breaker_threshold=0.5,
            breaker_min_attempts=4,
        ).run(specs)
        blocked = [d for d in report.degraded if d.reason.startswith("breaker-open")]
        assert blocked, report.render()

    def test_breaker_without_allow_partial_raises_not_dispatched(self):
        specs = [JobSpec.from_study(AlwaysFailsStudy(seed=s)) for s in range(4)]
        runner = CampaignRunner(
            retries=1,
            backoff_s=0.0,
            breaker_threshold=1.0,
            breaker_min_attempts=2,
        )
        with pytest.raises(RunnerError, match="after 2 attempt"):
            runner.run(specs)

    def test_breaker_in_pool_mode(self, tmp_path):
        specs = [JobSpec.from_study(AlwaysFailsStudy(seed=s)) for s in range(6)]
        report = CampaignRunner(
            jobs=2,
            retries=0,
            backoff_s=0.0,
            allow_partial=True,
            breaker_threshold=1.0,
            breaker_min_attempts=2,
        ).run(specs)
        assert report.n_degraded == 6
        assert any(
            d.reason.startswith("breaker-open") for d in report.degraded
        ), report.render()


class TestBatchFailurePaths:
    def test_worker_killed_mid_batch_retries_and_completes(self, tmp_path):
        specs, _ = _specs(tmp_path, range(3))
        specs.insert(
            1,
            JobSpec.from_study(
                CrashOnceStudy(sentinel=str(tmp_path / "batch-crash"))
            ),
        )
        report = CampaignRunner(
            jobs=2, batch_size=2, retries=3, backoff_s=0.0
        ).run(specs)
        assert report.n_ran == 4
        assert report.results[1].summary == {"ok": 1.0}
        # The crash charged an attempt to the batch that died.
        assert report.metrics[1].attempts >= 2

    def test_exhausted_batch_degrades_every_member(self, tmp_path):
        specs, _ = _specs(tmp_path, [0])
        specs.append(JobSpec.from_study(AlwaysFailsStudy()))
        report = CampaignRunner(
            jobs=2,
            batch_size=2,
            retries=0,
            backoff_s=0.0,
            allow_partial=True,
        ).run(specs)
        # One bad apple fails its whole batch: both specs degraded.
        assert report.n_degraded == 2
        assert {d.index for d in report.degraded} == {0, 1}


class TestFaultPlanIntegration:
    def test_injected_faults_are_retried_deterministically(self, tmp_path):
        from repro.faults import FaultPlan

        plan = FaultPlan(seed=11, p_error=0.4, max_faulty_attempts=1)
        specs, _ = _specs(tmp_path, range(6))
        first = CampaignRunner(
            fault_plan=plan, retries=2, backoff_s=0.0
        ).run(specs)
        second = CampaignRunner(
            fault_plan=plan, retries=2, backoff_s=0.0
        ).run(specs)
        assert [r.summary for r in first.results] == [
            r.summary for r in second.results
        ]
        assert [m.attempts for m in first.metrics] == [
            m.attempts for m in second.metrics
        ]
        assert any(m.attempts > 1 for m in first.metrics)  # faults landed
        assert all(m.status == "ran" for m in first.metrics)

    def test_corrupt_marked_entries_are_garbled_after_put(self, tmp_path):
        from repro.errors import CacheCorruptionError
        from repro.faults import FaultPlan

        plan = FaultPlan(seed=1, p_corrupt=1.0)
        specs, trace = _specs(tmp_path, [0, 1])
        store = ResultStore(tmp_path / "cache")
        CampaignRunner(fault_plan=plan, store=store).run(specs)
        for spec in specs:
            with pytest.raises(CacheCorruptionError):
                store.read_entry(spec)
        # A faultless replay quarantines and recomputes them.
        replay = CampaignRunner(store=store).run(specs)
        assert replay.n_ran == 2 and _count_runs(trace) == 4
        assert len(store.quarantined()) == 2

    def test_crash_fault_in_pool_recovers(self, tmp_path):
        from repro.faults import FaultPlan

        plan = FaultPlan(seed=3, p_crash=0.3, max_faulty_attempts=1)
        specs, _ = _specs(tmp_path, range(5))
        report = CampaignRunner(
            jobs=2, fault_plan=plan, retries=4, backoff_s=0.0
        ).run(specs)
        assert all(m.status == "ran" for m in report.metrics)
        assert [r.summary["value"] for r in report.results] == [
            1.0, 2.0, 3.0, 4.0, 5.0
        ]
