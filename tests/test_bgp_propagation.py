"""Tests for valley-free route propagation on the hand-wired toy graph.

Toy-graph shape (see conftest): T1A-T1B clique; TR1 under T1A; TR2 under
T1B; E1 under TR1; E2 under TR2; the provider buys transit from T1A,
has a PNI with E1, and public-peers with TR2.
"""

import pytest

from repro.errors import RoutingError
from repro.geo import city_named
from repro.bgp import RoutePref, propagate

from conftest import E1, E2, PROVIDER, T1A, T1B, TR1, TR2


class TestBasicPropagation:
    def test_unknown_origin_rejected(self, toy_graph):
        with pytest.raises(RoutingError):
            propagate(toy_graph, 424242)

    def test_origin_route(self, toy_graph):
        table = propagate(toy_graph, E1)
        route = table.best(E1)
        assert route.pref is RoutePref.ORIGIN
        assert route.path == (E1,)

    def test_everyone_reaches_an_eyeball(self, toy_graph):
        table = propagate(toy_graph, E1)
        for asys in toy_graph.ases():
            assert table.best(asys.asn) is not None, asys.name

    def test_customer_routes_preferred(self, toy_graph):
        # TR1 learns E1 from its customer.
        table = propagate(toy_graph, E1)
        assert table.best(TR1).pref is RoutePref.CUSTOMER
        assert table.best(TR1).path == (TR1, E1)
        # T1A learns it transitively from customers.
        assert table.best(T1A).pref is RoutePref.CUSTOMER
        assert table.best(T1A).path == (T1A, TR1, E1)

    def test_peer_route_at_provider(self, toy_graph):
        # The provider's route to E1: direct PNI (peer) beats the transit
        # route via T1A.
        table = propagate(toy_graph, E1)
        route = table.best(PROVIDER)
        assert route.pref is RoutePref.PEER
        assert route.path == (PROVIDER, E1)

    def test_provider_route_when_no_peer(self, toy_graph):
        # E2 is only reachable for the provider via peers/transit:
        # the public peering with TR2 (TR2's customer cone contains E2).
        table = propagate(toy_graph, E2)
        route = table.best(PROVIDER)
        assert route.pref is RoutePref.PEER
        assert route.path == (PROVIDER, TR2, E2)

    def test_tier1_uses_peer_for_other_cone(self, toy_graph):
        # T1A reaches E2 via its peer T1B (valley-free: T1B exports its
        # customer route to a peer).
        table = propagate(toy_graph, E2)
        route = table.best(T1A)
        assert route.pref is RoutePref.PEER
        assert route.path == (T1A, T1B, TR2, E2)

    def test_provider_route_downward(self, toy_graph):
        # E1's route to E2 must climb to its providers (provider routes).
        table = propagate(toy_graph, E2)
        route = table.best(E1)
        assert route.pref is RoutePref.PROVIDER
        assert route.path == (E1, TR1, T1A, T1B, TR2, E2)


class TestValleyFree:
    def test_no_peer_route_reexported_to_peer(self, toy_graph):
        # The provider holds a PEER route to E1; it must not export it to
        # its other peer TR2.
        table = propagate(toy_graph, E1)
        assert table.exported_route(PROVIDER, TR2) is None

    def test_no_provider_route_exported_upward(self, toy_graph):
        # E1 holds a PROVIDER route to E2; it must not export it to the
        # provider over their peering (peers get customer routes only).
        table = propagate(toy_graph, E2)
        assert table.exported_route(E1, PROVIDER) is None

    def test_customer_gets_everything(self, toy_graph):
        # T1A exports its peer-learned route to its customer (the provider).
        table = propagate(toy_graph, E2)
        exported = table.exported_route(T1A, PROVIDER)
        assert exported is not None
        assert exported.path == (PROVIDER, T1A, T1B, TR2, E2)

    def test_loop_suppression(self, toy_graph):
        # TR1's best route to E1 goes through... E1; exporting to E1 would
        # loop and must be suppressed.
        table = propagate(toy_graph, E1)
        assert table.exported_route(TR1, E1) is None

    def test_no_valley_paths_anywhere(self, toy_graph):
        """No stable path may contain a provider->customer->provider valley
        or a peer-peer-peer step."""
        for origin in (E1, E2, PROVIDER, TR1):
            table = propagate(toy_graph, origin)
            for asys in toy_graph.ases():
                route = table.best(asys.asn)
                if route is None or route.as_hops == 0:
                    continue
                _assert_valley_free(toy_graph, route.path)


def _assert_valley_free(graph, path):
    """Gao-Rexford: once a path goes down (provider->customer) or sideways
    (peer), it may never go up or sideways again.

    The stored path runs holder -> origin, i.e. in the direction
    announcements flowed *backwards*.  Traffic flows holder -> origin, and
    the export rules guarantee: uphill (customer->provider) steps first,
    at most one peer step, then downhill."""
    went_down_or_peer = False
    for x, y in zip(path[:-1], path[1:]):
        link = graph.link(x, y)
        if link.relationship.value == "peer":
            step = "peer"
        elif link.customer_asn == y:
            step = "down"  # x is provider of y: traffic moves down
        else:
            step = "up"
        if step in ("peer", "down"):
            went_down_or_peer_prev = went_down_or_peer
            went_down_or_peer = True
            if step == "peer" and went_down_or_peer_prev:
                raise AssertionError(f"peer step after going down: {path}")
        elif went_down_or_peer:
            raise AssertionError(f"uphill step after going down: {path}")


class TestSelectionOrder:
    def test_shorter_path_wins_within_class(self, toy_graph):
        # Give T1B a direct customer link to E1 in a fresh graph: T1A
        # would then see two customer routes to E1 (via TR1, 2 hops) and
        # none shorter; T1B sees a 1-hop customer route.
        from repro.topology import Relationship
        from repro.topology.asgraph import link_between

        toy_graph.add_link(
            link_between(
                E1,
                T1B,
                Relationship.CUSTOMER,
                [city_named("Chicago")],
                customer_asn=E1,
            )
        )
        table = propagate(toy_graph, E1)
        assert table.best(T1B).path == (T1B, E1)

    def test_lowest_next_hop_tiebreak(self, toy_graph):
        # E2's providers: only TR2; add a second transit relationship so
        # two equal-length provider routes compete at E2 for reaching E1.
        from repro.topology import Relationship
        from repro.topology.asgraph import link_between

        toy_graph.add_link(
            link_between(
                E2,
                TR1,
                Relationship.CUSTOMER,
                [city_named("Frankfurt")],
                customer_asn=E2,
            )
        )
        table = propagate(toy_graph, E1)
        # Via TR1: (E2, TR1, E1) 2 hops; via TR2: (E2, TR2, T1B, T1A, TR1, E1).
        assert table.best(E2).path == (E2, TR1, E1)


class TestOriginScoping:
    def test_site_filter_blocks_distant_links(self, toy_graph):
        # The provider announces only at London: the E1 PNI (New York
        # only) must not hear it, so E1 reaches the prefix via transit.
        table = propagate(
            toy_graph, PROVIDER, origin_cities=frozenset({city_named("London")})
        )
        route = table.best(E1)
        assert route is not None
        assert route.path != (E1, PROVIDER)
        # TR2 peers at London and still hears it directly.
        assert table.best(TR2).path == (TR2, PROVIDER)

    def test_unscoped_announcement_reaches_pni(self, toy_graph):
        table = propagate(toy_graph, PROVIDER)
        assert table.best(E1).path == (E1, PROVIDER)


class TestPrepending:
    def test_prepend_diverts_selection(self, toy_graph):
        # Baseline: E1 reaches the provider over the PNI (peer, 1 hop).
        baseline = propagate(toy_graph, PROVIDER)
        assert baseline.best(E1).path == (E1, PROVIDER)
        # Peer routes beat provider routes regardless of prepending (local
        # pref first), so prepending toward E1 does NOT move E1 off the
        # PNI — but prepending toward T1A lengthens every transit path.
        prepended = propagate(toy_graph, PROVIDER, prepends={T1A: 4})
        assert prepended.best(E1).path == (E1, PROVIDER)
        assert (
            prepended.best(TR1).advertised_length
            > baseline.best(TR1).advertised_length
        )

    def test_prepend_changes_tiebreak(self, toy_graph):
        # TR2 hears the provider directly (peer) — prepending on that
        # peering cannot change its preference class, but it does change
        # the advertised length it re-exports downstream.
        plain = propagate(toy_graph, PROVIDER)
        prepended = propagate(toy_graph, PROVIDER, prepends={TR2: 2})
        assert (
            prepended.best(E2).advertised_length
            == plain.best(E2).advertised_length + 2
        )


class TestCandidates:
    def test_candidates_at_provider(self, toy_graph):
        table = propagate(toy_graph, E1)
        candidates = table.candidates_at(PROVIDER)
        neighbors = {c.neighbor for c in candidates}
        # T1A (transit, exports everything) and E1 (the PNI origin-side).
        assert neighbors == {T1A, E1}
        for c in candidates:
            assert c.route.holder == PROVIDER
            assert c.route.origin == E1

    def test_candidates_exclude_valley_violations(self, toy_graph):
        # For destination E2, TR2 exports its customer route to the
        # provider, T1A exports its peer-learned route (provider is its
        # customer), but E1 has only a provider route and exports nothing.
        table = propagate(toy_graph, E2)
        neighbors = {c.neighbor for c in table.candidates_at(PROVIDER)}
        assert neighbors == {T1A, TR2}


class TestRoutingTableRepr:
    def test_repr_is_compact(self, toy_graph):
        """The repr must summarize, not dump the graph and route dict.

        The generated dataclass repr used to recurse into every Route
        (and, transitively, the whole ASGraph) — megabytes of text the
        moment a table appeared in an assertion diff or a log line.
        """
        table = propagate(toy_graph, E1)
        text = repr(table)
        assert text == f"RoutingTable(origin={E1}, routes={len(table)})"
        assert len(text) < 80

    def test_compare_ignores_graph_identity(self, toy_graph):
        """Equality is by announcement (origin/scoping/grooming) only."""
        from conftest import build_toy_graph

        a = propagate(toy_graph, E1)
        b = propagate(build_toy_graph(), E1)
        assert a == b
        assert a != propagate(toy_graph, E2)


class TestGroomingValidation:
    def test_prepend_for_non_neighbor_rejected(self, toy_graph):
        """A typo'd prepend key must fail loudly, naming the bad ASN."""
        with pytest.raises(RoutingError, match=str(T1B)):
            propagate(toy_graph, PROVIDER, prepends={T1B: 2})

    def test_suppression_of_non_neighbor_rejected(self, toy_graph):
        with pytest.raises(RoutingError, match=str(E2)):
            propagate(toy_graph, PROVIDER, suppressed=frozenset({E2}))

    def test_both_lanes_reject_identically(self, toy_graph):
        for lane in (False, True):
            with pytest.raises(RoutingError):
                propagate(toy_graph, PROVIDER, prepends={99999: 1}, fast=lane)

    def test_valid_grooming_still_accepted(self, toy_graph):
        table = propagate(toy_graph, PROVIDER, prepends={T1A: 2})
        assert len(table) > 0


class TestExportedRouteErrors:
    def test_non_adjacent_export_is_typed_error(self, toy_graph):
        """Asking about a non-existent adjacency is a caller bug and
        must raise RoutingError, not silently return None."""
        table = propagate(toy_graph, E1)
        with pytest.raises(RoutingError, match="non-adjacent"):
            table.exported_route(E1, T1B)

    def test_routeless_advertiser_short_circuits(self, toy_graph):
        """A routeless AS exports nothing — checked before adjacency,
        so no graph lookup (and no error) happens for dead sources."""
        table = propagate(
            toy_graph, PROVIDER, suppressed=frozenset({T1A, E1, TR2})
        )
        assert table.exported_route(T1A, T1B) is None
