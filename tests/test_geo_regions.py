"""Tests for country-to-region mapping."""

import pytest

from repro.errors import AnalysisError
from repro.geo import Region, countries_in_region, region_of_country


class TestRegionOfCountry:
    @pytest.mark.parametrize(
        "country,region",
        [
            ("US", Region.NORTH_AMERICA),
            ("BR", Region.SOUTH_AMERICA),
            ("DE", Region.EUROPE),
            ("AE", Region.MIDDLE_EAST),
            ("IN", Region.ASIA),
            ("AU", Region.OCEANIA),
            ("NG", Region.AFRICA),
        ],
    )
    def test_known_mappings(self, country, region):
        assert region_of_country(country) is region

    def test_case_insensitive(self):
        assert region_of_country("jp") is Region.ASIA

    def test_unknown_country(self):
        with pytest.raises(AnalysisError):
            region_of_country("XX")

    def test_middle_east_carved_out_of_asia(self):
        # Figure 5's discussion treats the Middle East separately.
        assert region_of_country("SA") is Region.MIDDLE_EAST
        assert region_of_country("SA") is not Region.ASIA


class TestCountriesInRegion:
    def test_sorted_and_consistent(self):
        for region in Region:
            countries = countries_in_region(region)
            assert countries == sorted(countries)
            assert all(region_of_country(c) is region for c in countries)

    def test_partition(self):
        # Every country belongs to exactly one region.
        seen = []
        for region in Region:
            seen.extend(countries_in_region(region))
        assert len(seen) == len(set(seen))
