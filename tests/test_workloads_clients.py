"""Tests for client prefix generation."""

import pytest

from repro.errors import MeasurementError
from repro.workloads import generate_client_prefixes


class TestGeneration:
    def test_count_and_ids(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 40, seed=0)
        assert len(prefixes) == 40
        assert [p.pid for p in prefixes] == [f"p{i:05d}" for i in range(40)]

    def test_weights_normalized(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 50, seed=0)
        assert sum(p.weight for p in prefixes) == pytest.approx(1.0)
        assert all(p.weight > 0 for p in prefixes)

    def test_prefixes_live_in_eyeballs(self, small_internet):
        eyeballs = set(small_internet.eyeball_asns)
        for prefix in generate_client_prefixes(small_internet, 50, seed=0):
            assert prefix.asn in eyeballs

    def test_city_within_as_footprint(self, small_internet):
        for prefix in generate_client_prefixes(small_internet, 50, seed=0):
            footprint = small_internet.graph.get(prefix.asn).cities
            assert prefix.city in footprint

    def test_n24s_in_range(self, small_internet):
        for prefix in generate_client_prefixes(small_internet, 80, seed=1):
            assert 1 <= prefix.n_24s <= 64

    def test_deterministic(self, small_internet):
        a = generate_client_prefixes(small_internet, 30, seed=5)
        b = generate_client_prefixes(small_internet, 30, seed=5)
        assert a == b

    def test_seed_changes_assignment(self, small_internet):
        a = generate_client_prefixes(small_internet, 30, seed=5)
        b = generate_client_prefixes(small_internet, 30, seed=6)
        assert a != b

    def test_needs_positive_count(self, small_internet):
        with pytest.raises(MeasurementError):
            generate_client_prefixes(small_internet, 0)

    def test_weight_sigma_concentration(self, small_internet):
        """Larger sigma concentrates more weight on fewer prefixes."""
        flat = generate_client_prefixes(small_internet, 200, seed=2, weight_sigma=0.1)
        skewed = generate_client_prefixes(small_internet, 200, seed=2, weight_sigma=2.0)

        def top10_share(prefixes):
            weights = sorted((p.weight for p in prefixes), reverse=True)
            return sum(weights[:10])

        assert top10_share(skewed) > top10_share(flat)

    def test_ldns_initially_unset(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 10, seed=0)
        assert all(p.ldns is None for p in prefixes)

    def test_with_ldns_copy(self, small_internet):
        prefix = generate_client_prefixes(small_internet, 1, seed=0)[0]
        tagged = prefix.with_ldns("ldns-x")
        assert tagged.ldns == "ldns-x"
        assert prefix.ldns is None
        assert tagged.pid == prefix.pid
