"""Tests for anycast grooming actions."""

import pytest

from repro.errors import RoutingError
from repro.geo import city_named
from repro.bgp import Grooming, propagate

from conftest import E1, PROVIDER

LONDON = city_named("London")
NY = city_named("New York")


class TestGroomingState:
    def test_ungroomed_compiles_to_noop(self):
        grooming = Grooming.ungroomed([LONDON, NY])
        origin_cities, prepends, suppressed = grooming.compile()
        assert origin_cities is None
        assert prepends == {}
        assert suppressed == frozenset()
        assert grooming.actions == 0

    def test_withdraw_and_restore(self):
        grooming = Grooming.ungroomed([LONDON, NY])
        grooming.withdraw_city(LONDON)
        assert grooming.announced_cities() == frozenset({NY})
        assert grooming.actions == 1
        grooming.restore_city(LONDON)
        assert grooming.announced_cities() == frozenset({LONDON, NY})

    def test_cannot_withdraw_unknown_city(self):
        grooming = Grooming.ungroomed([LONDON])
        with pytest.raises(RoutingError):
            grooming.withdraw_city(NY)

    def test_cannot_withdraw_last_city(self):
        grooming = Grooming.ungroomed([LONDON, NY])
        grooming.withdraw_city(LONDON)
        with pytest.raises(RoutingError):
            grooming.withdraw_city(NY)

    def test_prepend_bookkeeping(self):
        grooming = Grooming.ungroomed([LONDON])
        grooming.prepend_to(10, 3)
        assert grooming.compile()[1] == {10: 3}
        grooming.prepend_to(10, 0)  # removes
        assert grooming.compile()[1] == {}

    def test_suppress_bookkeeping(self):
        grooming = Grooming.ungroomed([LONDON])
        grooming.suppress_neighbor(42)
        assert grooming.compile()[2] == frozenset({42})
        assert grooming.actions == 1
        grooming.unsuppress_neighbor(42)
        assert grooming.compile()[2] == frozenset()

    def test_negative_prepend_rejected(self):
        grooming = Grooming.ungroomed([LONDON])
        with pytest.raises(RoutingError):
            grooming.prepend_to(10, -1)

    def test_needs_cities(self):
        with pytest.raises(RoutingError):
            Grooming(all_cities=frozenset())


class TestGroomingEffect:
    def test_withdrawal_steers_routing(self, toy_graph):
        """Withdrawing the New York announcement moves E1 off the PNI."""
        grooming = Grooming.ungroomed([NY, LONDON])
        grooming.withdraw_city(NY)
        origin_cities, prepends, suppressed = grooming.compile()
        table = propagate(
            toy_graph,
            PROVIDER,
            origin_cities=origin_cities,
            prepends=prepends,
            suppressed=suppressed,
        )
        # The PNI interconnects at New York only; with NY withdrawn E1
        # must use transit.
        assert table.best(E1).path != (E1, PROVIDER)

    def test_suppression_steers_routing(self, toy_graph):
        """A no-announce community moves the client off the direct peer
        route, which prepending alone cannot do (local pref wins)."""
        prepended = propagate(toy_graph, PROVIDER, prepends={E1: 10})
        assert prepended.best(E1).path == (E1, PROVIDER)
        grooming = Grooming.ungroomed([NY, LONDON]).suppress_neighbor(E1)
        origin_cities, prepends, suppressed = grooming.compile()
        table = propagate(
            toy_graph,
            PROVIDER,
            origin_cities=origin_cities,
            prepends=prepends,
            suppressed=suppressed,
        )
        assert table.best(E1).path != (E1, PROVIDER)
