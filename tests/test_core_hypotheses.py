"""Tests for the hypothesis evaluators."""


from repro.analysis import weighted_cdf
from repro.core import (
    Verdict,
    evaluate_degrade_together,
    evaluate_direct_peering,
    evaluate_short_paths,
    evaluate_single_wan,
)
from repro.edgefabric.analysis import Fig2Result, PersistenceResult
from repro.cdn.analysis import Fig3Result
from repro.cloudtiers.analysis import Fig5Result, IndiaCaseStudy
from repro.geo import Region


def make_persistence(co, corr):
    return PersistenceResult(
        frac_pairs_never=0.8,
        frac_pairs_persistent=0.05,
        frac_pairs_transient=0.15,
        degradation_co_occurrence=co,
        median_route_correlation=corr,
        threshold_ms=5.0,
    )


def make_fig2(transit_close, public_close=0.9):
    cdf = weighted_cdf([0.0, 1.0])
    return Fig2Result(
        peer_vs_transit=cdf,
        private_vs_public=cdf,
        frac_transit_within_5ms=transit_close,
        frac_public_within_5ms=public_close,
    )


def make_fig3(within, beyond):
    cdf = weighted_cdf([1.0])
    return Fig3Result(
        ccdfs={"world": cdf},
        frac_within_10ms={"world": within},
        frac_beyond_100ms={"world": beyond},
    )


def make_fig5():
    return Fig5Result(
        country_diff_ms={"IN": -30.0, "JP": 20.0},
        country_vp_count={"IN": 5, "JP": 5},
        frac_within_10ms=0.0,
        premium_better=("JP",),
        standard_better=("IN",),
        region_medians={Region.ASIA: -5.0},
    )


def make_india(diff, west, pacific=1.0):
    return IndiaCaseStudy(
        n_vps=10,
        median_diff_ms=diff,
        frac_premium_via_pacific=pacific,
        frac_standard_via_west=west,
    )


class TestDegradeTogether:
    def test_supported(self):
        verdict = evaluate_degrade_together(make_persistence(0.7, 0.8))
        assert verdict.verdict is Verdict.SUPPORTED
        assert "degradation_co_occurrence" in verdict.evidence

    def test_refuted(self):
        assert (
            evaluate_degrade_together(make_persistence(0.1, 0.1)).verdict
            is Verdict.REFUTED
        )

    def test_inconclusive(self):
        assert (
            evaluate_degrade_together(make_persistence(0.4, 0.2)).verdict
            is Verdict.INCONCLUSIVE
        )


class TestDirectPeering:
    def test_supported(self):
        assert evaluate_direct_peering(make_fig2(0.9)).verdict is Verdict.SUPPORTED

    def test_refuted(self):
        assert evaluate_direct_peering(make_fig2(0.2)).verdict is Verdict.REFUTED

    def test_inconclusive(self):
        assert (
            evaluate_direct_peering(make_fig2(0.5)).verdict is Verdict.INCONCLUSIVE
        )


class TestShortPaths:
    def test_supported(self):
        assert evaluate_short_paths(make_fig3(0.8, 0.05)).verdict is Verdict.SUPPORTED

    def test_refuted(self):
        assert evaluate_short_paths(make_fig3(0.3, 0.4)).verdict is Verdict.REFUTED


class TestSingleWan:
    def test_supported(self):
        verdict = evaluate_single_wan(make_fig5(), make_india(-30.0, 0.9))
        assert verdict.verdict is Verdict.SUPPORTED

    def test_refuted_when_wan_wins(self):
        verdict = evaluate_single_wan(make_fig5(), make_india(+20.0, 0.9))
        assert verdict.verdict is Verdict.REFUTED

    def test_inconclusive_without_structure(self):
        verdict = evaluate_single_wan(make_fig5(), make_india(-20.0, 0.1))
        assert verdict.verdict is Verdict.INCONCLUSIVE
