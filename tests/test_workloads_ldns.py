"""Tests for LDNS resolver assignment."""

import pytest

from repro.errors import MeasurementError
from repro.workloads import assign_ldns, generate_client_prefixes


class TestAssignment:
    def test_every_prefix_gets_resolver(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 50, seed=0)
        assigned, resolvers = assign_ldns(prefixes, small_internet, seed=0)
        assert len(assigned) == len(prefixes)
        for prefix in assigned:
            assert prefix.ldns is not None
            assert prefix.ldns in resolvers

    def test_resolver_map_covers_only_used(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 50, seed=0)
        assigned, resolvers = assign_ldns(prefixes, small_internet, seed=0)
        used = {p.ldns for p in assigned}
        assert set(resolvers) == used

    def test_isp_resolver_colocated_with_as(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 80, seed=1)
        assigned, resolvers = assign_ldns(
            prefixes, small_internet, seed=1, public_fraction=0.0
        )
        for prefix in assigned:
            resolver = resolvers[prefix.ldns]
            assert not resolver.public
            assert resolver.asn == prefix.asn
            assert (
                resolver.city
                == small_internet.graph.get(prefix.asn).home_city
            )

    def test_all_public(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 40, seed=1)
        assigned, resolvers = assign_ldns(
            prefixes, small_internet, seed=1, public_fraction=1.0
        )
        assert all(resolvers[p.ldns].public for p in assigned)

    def test_public_fraction_roughly_respected(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 300, seed=2)
        assigned, resolvers = assign_ldns(
            prefixes, small_internet, seed=2, public_fraction=0.3
        )
        frac = sum(1 for p in assigned if resolvers[p.ldns].public) / len(assigned)
        assert 0.15 <= frac <= 0.45

    def test_deterministic(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 50, seed=3)
        a, _ = assign_ldns(prefixes, small_internet, seed=9)
        b, _ = assign_ldns(prefixes, small_internet, seed=9)
        assert a == b

    def test_invalid_fraction(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 5, seed=0)
        with pytest.raises(MeasurementError):
            assign_ldns(prefixes, small_internet, public_fraction=1.5)

    def test_same_as_shares_isp_resolver(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 200, seed=4)
        assigned, _ = assign_ldns(
            prefixes, small_internet, seed=4, public_fraction=0.0
        )
        by_asn = {}
        for prefix in assigned:
            by_asn.setdefault(prefix.asn, set()).add(prefix.ldns)
        for asn, resolvers in by_asn.items():
            assert len(resolvers) == 1, f"AS{asn} has several ISP resolvers"
