"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["fig1"])
        assert args.handler is not None
        assert args.seed == 0

    def test_options_parsed(self):
        parser = build_parser()
        args = parser.parse_args(["fig3", "--seed", "7", "--scale", "40", "--days", "1.5"])
        assert args.seed == 7
        assert args.scale == 40
        assert args.days == 1.5

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        out = capsys.readouterr().out
        assert "repro-bgp" in out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig5", "grooming"):
            assert name in out

    @pytest.mark.parametrize("command", ["fig1", "fig2"])
    def test_pop_commands_run(self, capsys, command):
        assert main([command, "--scale", "30", "--days", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "ms" in out or "%" in out

    def test_fig4_runs(self, capsys):
        assert main(["fig4", "--scale", "30", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "improved" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--scale", "40", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "within +/- 10 ms" in out

    def test_sites_runs(self, capsys):
        assert main(["sites", "--scale", "30"]) == 0
        out = capsys.readouterr().out
        assert "sites" in out

    def test_fig1_csv_export(self, capsys, tmp_path):
        target = tmp_path / "fig1.csv"
        assert main(
            ["fig1", "--scale", "30", "--days", "0.25", "--csv", str(target)]
        ) == 0
        text = target.read_text()
        assert text.startswith("bgp_minus_alternate_ms,cum_fraction")
        assert len(text.splitlines()) > 10
