"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["fig1"])
        assert args.handler is not None
        assert args.seed == 0

    def test_options_parsed(self):
        parser = build_parser()
        args = parser.parse_args(["fig3", "--seed", "7", "--scale", "40", "--days", "1.5"])
        assert args.seed == 7
        assert args.scale == 40
        assert args.days == 1.5

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        out = capsys.readouterr().out
        assert "repro-bgp" in out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig5", "grooming"):
            assert name in out

    @pytest.mark.parametrize("command", ["fig1", "fig2"])
    def test_pop_commands_run(self, capsys, command):
        assert main([command, "--scale", "30", "--days", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "ms" in out or "%" in out

    def test_fig4_runs(self, capsys):
        assert main(["fig4", "--scale", "30", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "improved" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--scale", "40", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "within +/- 10 ms" in out

    def test_sites_runs(self, capsys):
        assert main(["sites", "--scale", "30"]) == 0
        out = capsys.readouterr().out
        assert "sites" in out

    def test_fig1_csv_export(self, capsys, tmp_path):
        target = tmp_path / "fig1.csv"
        assert main(
            ["fig1", "--scale", "30", "--days", "0.25", "--csv", str(target)]
        ) == 0
        text = target.read_text()
        assert text.startswith("bgp_minus_alternate_ms,cum_fraction")
        assert len(text.splitlines()) > 10


class TestScenario:
    def test_flags_parsed(self):
        parser = build_parser()
        args = parser.parse_args(
            ["scenario", "--name", "hijack", "--mrai-s", "2.5",
             "--timeline-out", "t.json", "--seed", "3"]
        )
        assert args.name == "hijack"
        assert args.mrai_s == 2.5
        assert args.timeline_out == "t.json"
        assert args.seed == 3

    def test_name_required(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_unknown_name_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "--name", "nope"])

    def test_choices_match_registry(self):
        from repro.bgp import SCENARIOS
        from repro.cli import SCENARIO_NAMES

        assert sorted(SCENARIO_NAMES) == sorted(SCENARIOS)

    def test_hijack_runs_and_writes_timeline(self, capsys, tmp_path):
        import json

        out = tmp_path / "hijack.json"
        assert main(
            ["scenario", "--name", "hijack", "--timeline-out", str(out)]
        ) == 0
        stdout = capsys.readouterr().out
        assert "time to reconverge" in stdout
        assert "captured_ases" in stdout
        payload = json.loads(out.read_text())
        assert payload["converged"] is True
        assert payload["timeline"]
        assert payload["time_to_reconverge_s"] > 0

    def test_withdrawal_cascade_reports_recovery(self, capsys):
        assert main(["scenario", "--name", "withdrawal-cascade"]) == 0
        stdout = capsys.readouterr().out
        assert "recovered to baseline" in stdout
        assert "time to recover" in stdout

    def test_list_mentions_scenario(self, capsys):
        assert main(["list"]) == 0
        assert "scenario" in capsys.readouterr().out


class TestIngest:
    def test_flags_parsed(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "ingest",
                "--shards",
                "3",
                "--chunk-windows",
                "8",
                "--sketch",
                "p2",
                "--max-centroids",
                "32",
                "--compare-batch",
                "--snapshot-out",
                "snap.json",
                "--rate-out",
                "rate.json",
            ]
        )
        assert args.shards == 3
        assert args.chunk_windows == 8
        assert args.sketch == "p2"
        assert args.max_centroids == 32
        assert args.compare_batch is True
        assert args.snapshot_out == "snap.json"
        assert args.rate_out == "rate.json"

    def test_list_mentions_ingest(self, capsys):
        assert main(["list"]) == 0
        assert "ingest" in capsys.readouterr().out

    def test_runs_end_to_end(self, capsys, tmp_path):
        """The service mode streams, reports, and writes its artifacts."""
        snap = tmp_path / "snapshot.json"
        rate = tmp_path / "rate.json"
        assert (
            main(
                [
                    "ingest",
                    "--scale",
                    "25",
                    "--days",
                    "0.25",
                    "--snapshot-out",
                    str(snap),
                    "--rate-out",
                    str(rate),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sessions ingested" in out
        assert "sessions/sec" in out

        import json

        from repro.stream import IngestSnapshot

        snapshot = IngestSnapshot.from_json(snap.read_text())
        assert snapshot.sessions > 0
        assert snapshot.to_json() == snap.read_text()  # canonical bytes
        measured = json.loads(rate.read_text())
        assert measured["sessions"] == snapshot.sessions
        assert measured["sessions_per_sec"] > 0

    def test_compare_batch_agrees(self, capsys):
        assert (
            main(["ingest", "--scale", "25", "--days", "0.25", "--compare-batch"])
            == 0
        )
        assert "lanes agree within tolerance" in capsys.readouterr().out

    def test_sharded_merge_is_byte_identical(self, capsys):
        assert (
            main(["ingest", "--scale", "25", "--days", "0.25", "--shards", "2"])
            == 0
        )
        assert "byte-identical to in-process merge" in capsys.readouterr().out


class TestCampaign:
    def test_flags_parsed(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "campaign",
                "--study",
                "pop",
                "--seeds",
                "1,2,3",
                "--jobs",
                "4",
                "--cache-dir",
                "/tmp/x",
                "--timeout",
                "30",
                "--retries",
                "1",
            ]
        )
        assert args.study == "pop"
        assert args.seeds == "1,2,3"
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/x"
        assert args.timeout == 30.0
        assert args.retries == 1

    def test_jobs_and_cache_available_everywhere(self):
        parser = build_parser()
        args = parser.parse_args(["report", "--jobs", "2", "--cache-dir", "c"])
        assert args.jobs == 2 and args.cache_dir == "c"

    def test_bad_seed_list_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "--study", "pop", "--seeds", "1,x"])

    def test_campaign_caches_across_invocations(self, capsys, tmp_path):
        argv = [
            "campaign",
            "--study",
            "pop",
            "--seeds",
            "1,2",
            "--scale",
            "25",
            "--days",
            "0.25",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 cache hits, 2 ran" in first
        assert "pop-routing: 2 seeds" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2 cache hits, 0 ran" in second
        # Identical aggregates from cache as from simulation.
        marker = "pop-routing: 2 seeds"
        assert second.split(marker)[1] == first.split(marker)[1]

    def test_single_seed_campaign_prints_report(self, capsys):
        assert main(
            ["campaign", "--study", "pop", "--scale", "25", "--days", "0.25"]
        ) == 0
        out = capsys.readouterr().out
        assert "Study: pop-routing" in out

    def test_list_mentions_campaign(self, capsys):
        assert main(["list"]) == 0
        assert "campaign" in capsys.readouterr().out


class TestResilienceFlags:
    """The campaign subcommand's fault/checkpoint/breaker surface."""

    def test_flags_parsed(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "campaign",
                "--study",
                "pop",
                "--checkpoint-dir",
                "/tmp/ckpt",
                "--resume",
                "--faults",
                "error=0.2,slow=0.1",
                "--fault-seed",
                "7",
                "--retry-budget",
                "5",
                "--breaker-threshold",
                "0.8",
                "--allow-partial",
            ]
        )
        assert args.checkpoint_dir == "/tmp/ckpt"
        assert args.resume is True
        assert args.faults == "error=0.2,slow=0.1"
        assert args.fault_seed == 7
        assert args.retry_budget == 5
        assert args.breaker_threshold == 0.8
        assert args.allow_partial is True

    def test_kwargs_mapping(self):
        from repro.cli import _campaign_runner_kwargs
        from repro.faults import FaultPlan

        parser = build_parser()
        args = parser.parse_args(
            [
                "campaign",
                "--study",
                "pop",
                "--checkpoint-dir",
                "/tmp/ckpt",
                "--resume",
                "--faults",
                "error=0.2",
                "--fault-seed",
                "7",
                "--retry-budget",
                "5",
                "--breaker-threshold",
                "0.8",
                "--allow-partial",
            ]
        )
        kwargs = _campaign_runner_kwargs(args)
        assert kwargs["fault_plan"] == FaultPlan(seed=7, p_error=0.2)
        assert kwargs["checkpoint_dir"] == "/tmp/ckpt"
        assert kwargs["resume"] is True
        assert kwargs["retry_budget"] == 5
        assert kwargs["breaker_threshold"] == 0.8
        assert kwargs["allow_partial"] is True

    def test_checkpoint_dir_defaults_to_cache_dir(self):
        from repro.cli import _campaign_runner_kwargs

        parser = build_parser()
        args = parser.parse_args(
            ["campaign", "--study", "pop", "--cache-dir", "/tmp/cache", "--resume"]
        )
        kwargs = _campaign_runner_kwargs(args)
        assert kwargs["checkpoint_dir"] == "/tmp/cache"
        assert kwargs["resume"] is True

    def test_resume_without_directories_exits(self):
        from repro.cli import _campaign_runner_kwargs

        parser = build_parser()
        args = parser.parse_args(["campaign", "--study", "pop", "--resume"])
        with pytest.raises(SystemExit, match="--resume requires"):
            _campaign_runner_kwargs(args)

    def test_bad_fault_spec_exits(self):
        from repro.cli import _campaign_runner_kwargs

        parser = build_parser()
        args = parser.parse_args(
            ["campaign", "--study", "pop", "--faults", "bogus=1"]
        )
        with pytest.raises(SystemExit, match="--faults"):
            _campaign_runner_kwargs(args)

    def test_campaign_with_faults_and_checkpoint_runs(self, capsys, tmp_path):
        argv = [
            "campaign",
            "--study",
            "pop",
            "--seeds",
            "1,2",
            "--scale",
            "25",
            "--days",
            "0.25",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--faults",
            "error=0.4",
            "--retries",
            "4",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "pop-routing: 2 seeds" in out
        # A clean finish retires the checkpoint (which defaulted to the
        # cache directory).
        assert not list((tmp_path / "cache").glob("campaign-*.ckpt.json"))


class TestTelemetry:
    def test_runtime_flags_parse_after_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(
            ["report", "--setting", "A", "--trace-out", "t.jsonl",
             "--log-level", "debug"]
        )
        assert args.setting == "A"
        assert args.trace_out == "t.jsonl"
        assert args.log_level == "debug"

    def test_runtime_flags_parse_before_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(["--log-json", "-v", "list"])
        assert args.log_json is True
        assert args.verbose == 1

    def test_trace_summarize_registered(self):
        parser = build_parser()
        args = parser.parse_args(["trace", "summarize", "t.jsonl"])
        assert args.file == "t.jsonl"
        assert args.handler is not None

    def test_trace_out_writes_stream_and_manifest(self, capsys, tmp_path):
        from repro import obs

        target = tmp_path / "t.jsonl"
        assert main(
            ["report", "--setting", "A", "--scale", "25", "--days", "0.25",
             "--trace-out", str(target)]
        ) == 0
        events = obs.load_events(target)
        span_names = {
            e["name"] for e in events if e["kind"] == "span_end"
        }
        assert len(span_names) >= 5  # the acceptance bar
        assert any(name.startswith("study.pop.") for name in span_names)
        manifest = obs.read_manifest(f"{target}.manifest.json")
        assert manifest.run_id == events[0]["run"]
        assert manifest.extra["n_events"] == len(events)

        capsys.readouterr()
        assert main(["trace", "summarize", str(target)]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "phase" in out
        assert "topology.build" in out


class TestTraceProfiling:
    """The profiling verbs: trace profile/flame/critical, campaign --progress."""

    @pytest.fixture(scope="class")
    def campaign_trace(self, tmp_path_factory):
        """One traced 3-seed campaign, shared by every verb test."""
        tmp = tmp_path_factory.mktemp("trace")
        target = tmp / "campaign.jsonl"
        assert main(
            ["campaign", "--study", "pop", "--seeds", "0,1,2",
             "--scale", "25", "--days", "0.25",
             "--cache-dir", str(tmp / "cache"),
             "--trace-out", str(target)]
        ) == 0
        return target

    def test_verbs_registered(self):
        parser = build_parser()
        args = parser.parse_args(
            ["trace", "profile", "t.jsonl", "--limit", "5", "--include-replay"]
        )
        assert args.file == "t.jsonl" and args.limit == 5
        assert args.include_replay is True
        args = parser.parse_args(["trace", "flame", "t.jsonl", "--out", "f.txt"])
        assert args.out == "f.txt"
        args = parser.parse_args(
            ["trace", "critical", "t.jsonl", "--anchor", "runner.campaign"]
        )
        assert args.anchor == "runner.campaign"
        args = parser.parse_args(["campaign", "--progress"])
        assert args.progress is True

    def test_profile_ranks_spans(self, campaign_trace, capsys):
        assert main(["trace", "profile", str(campaign_trace)]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "runner.campaign" in out
        assert "topology.build" in out
        assert "self" in out and "cum" in out

    def test_profile_limit(self, campaign_trace, capsys):
        assert main(["trace", "profile", str(campaign_trace), "--limit", "1"]) == 0
        body = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.strip() and not line.lstrip().startswith(("profile:", "span", "-"))
        ]
        assert len(body) <= 3  # one row plus totals

    def test_flame_writes_collapsed_stacks(self, campaign_trace, capsys, tmp_path):
        from repro.obs import parse_collapsed

        out_file = tmp_path / "flame.txt"
        assert main(
            ["trace", "flame", str(campaign_trace), "--out", str(out_file)]
        ) == 0
        text = out_file.read_text()
        parsed = parse_collapsed(text)  # speedscope-loadable round trip
        assert any(path[0] == "runner.campaign" for path in parsed)

        capsys.readouterr()
        assert main(["trace", "flame", str(campaign_trace)]) == 0
        assert parse_collapsed(capsys.readouterr().out) == parsed

    def test_flame_empty_trace_exits(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit, match="no closed spans"):
            main(["trace", "flame", str(empty)])

    def test_critical_reports_chain(self, campaign_trace, capsys):
        assert main(["trace", "critical", str(campaign_trace)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "runner.campaign" in out
        assert "wall" in out

    def test_critical_missing_anchor_message(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit, match="trace critical"):
            main(["trace", "critical", str(empty)])

    def test_campaign_progress_writes_status_line(self, tmp_path, capsys):
        assert main(
            ["campaign", "--study", "pop", "--seeds", "0",
             "--scale", "25", "--days", "0.25",
             "--cache-dir", str(tmp_path / "cache"), "--progress"]
        ) == 0
        err = capsys.readouterr().err
        assert "campaign 1/1 (100%)" in err
