"""Tests for the zero-copy shared-memory plane (repro.runner.shm).

Covers the full lifecycle — create / attach / unlink — plus the two
properties the campaign plumbing depends on: content-addressed spec
hashing (segment names must not leak into hashes) and manifest-driven
reclaim of segments orphaned by a dead owner.
"""

import json

import numpy as np
import pytest

from repro.errors import RunnerError
from repro.runner.shm import (
    MANIFEST_PREFIX,
    SharedArrayRef,
    SharedInputSet,
    attach_shared,
    describe_arrays,
    reclaim_stale,
    segment_exists,
)
from repro.runner.spec import JobSpec


def _arrays():
    return {
        "indptr": np.arange(5, dtype=np.int64),
        "weights": np.linspace(0.0, 1.0, 7, dtype=np.float64),
    }


class TestSharedInputSet:
    def test_create_attach_roundtrip(self, tmp_path):
        with SharedInputSet.create(_arrays(), manifest_dir=tmp_path) as shared:
            views = attach_shared(shared.refs)
            for key, original in _arrays().items():
                np.testing.assert_array_equal(views[key], original)
                assert not views[key].flags.writeable
        # Context exit unlinks everything, including the manifest.
        for ref in shared.refs.values():
            assert not segment_exists(ref.name)
        assert not list(tmp_path.glob(f"{MANIFEST_PREFIX}*.json"))

    def test_manifest_written_before_segments(self, tmp_path):
        shared = SharedInputSet.create(_arrays(), manifest_dir=tmp_path)
        try:
            manifest = json.loads(shared.manifest_path.read_text())
            assert sorted(manifest["segments"]) == sorted(
                ref.name for ref in shared.refs.values()
            )
            assert manifest["pid"] > 0
        finally:
            shared.unlink()

    def test_unlink_is_idempotent(self, tmp_path):
        shared = SharedInputSet.create(_arrays(), manifest_dir=tmp_path)
        shared.unlink()
        shared.unlink()

    def test_empty_input_rejected(self):
        with pytest.raises(RunnerError, match="at least one array"):
            SharedInputSet.create({})

    def test_non_array_rejected_and_nothing_leaks(self, tmp_path):
        with pytest.raises(RunnerError, match="numpy array"):
            SharedInputSet.create(
                {"good": np.ones(3), "bad": [1, 2, 3]}, manifest_dir=tmp_path
            )
        assert not list(tmp_path.glob(f"{MANIFEST_PREFIX}*.json"))

    def test_total_bytes(self):
        shared = SharedInputSet.create(_arrays())
        try:
            expected = sum(a.nbytes for a in _arrays().values())
            assert shared.total_bytes == expected
        finally:
            shared.unlink()


class TestAttach:
    def test_missing_segment_is_typed_error(self):
        ref = SharedArrayRef(
            name="repro-test-does-not-exist",
            dtype="<i8",
            shape=(4,),
            digest="0" * 64,
        )
        with pytest.raises(RunnerError, match="does not exist"):
            attach_shared({"x": ref})

    def test_digest_mismatch_is_typed_error(self):
        shared = SharedInputSet.create({"x": np.arange(4, dtype=np.int64)})
        try:
            real = shared.refs["x"]
            tampered = SharedArrayRef(
                name=real.name,
                dtype=real.dtype,
                shape=real.shape,
                digest="f" * 64,
            )
            with pytest.raises(RunnerError, match="digest"):
                attach_shared({"x": tampered})
        finally:
            shared.unlink()


class TestHashing:
    def test_spec_hash_ignores_segment_names(self):
        """Two runs share cache entries even though segment names are
        random per run — content identity is the digest."""
        first = SharedInputSet.create(_arrays())
        second = SharedInputSet.create(_arrays())
        try:
            spec_a = JobSpec(study="repro.core.study:PopRoutingStudy", shared=first.refs)
            spec_b = JobSpec(study="repro.core.study:PopRoutingStudy", shared=second.refs)
            assert spec_a.content_hash == spec_b.content_hash
        finally:
            first.unlink()
            second.unlink()

    def test_spec_hash_sees_shared_content(self):
        bare = JobSpec(study="repro.core.study:PopRoutingStudy")
        with_refs = JobSpec(
            study="repro.core.study:PopRoutingStudy",
            shared=describe_arrays(_arrays()),
        )
        other = dict(_arrays())
        other["weights"] = other["weights"] + 1.0
        with_other = JobSpec(
            study="repro.core.study:PopRoutingStudy",
            shared=describe_arrays(other),
        )
        assert bare.content_hash != with_refs.content_hash
        assert with_refs.content_hash != with_other.content_hash

    def test_describe_matches_created_refs(self):
        """describe_arrays (no segments) hashes like the real thing."""
        shared = SharedInputSet.create(_arrays())
        try:
            described = describe_arrays(_arrays())
            for key, ref in shared.refs.items():
                assert described[key].digest == ref.digest
                assert described[key].dtype == ref.dtype
                assert described[key].shape == ref.shape
        finally:
            shared.unlink()

    def test_build_rejects_study_without_shared_kwarg(self):
        spec = JobSpec(
            study="repro.core.study:PopRoutingStudy",
            shared=describe_arrays(_arrays()),
        )
        with pytest.raises(RunnerError, match="shared"):
            spec.build()


class TestReclaim:
    def test_live_owner_is_left_alone(self, tmp_path):
        shared = SharedInputSet.create(_arrays(), manifest_dir=tmp_path)
        try:
            assert reclaim_stale(tmp_path) == []
            for ref in shared.refs.values():
                assert segment_exists(ref.name)
        finally:
            shared.unlink()

    def test_dead_owner_segments_reclaimed(self, tmp_path):
        shared = SharedInputSet.create(_arrays(), manifest_dir=tmp_path)
        # Forge the manifest to name a pid that cannot be running.
        manifest = json.loads(shared.manifest_path.read_text())
        manifest["pid"] = 2**22 + 1
        shared.manifest_path.write_text(json.dumps(manifest))
        names = [ref.name for ref in shared.refs.values()]
        reclaimed = reclaim_stale(tmp_path)
        assert sorted(reclaimed) == sorted(names)
        for name in names:
            assert not segment_exists(name)
        assert not list(tmp_path.glob(f"{MANIFEST_PREFIX}*.json"))
        shared._segments = []  # segments are gone; skip double-unlink
        shared.unlink()

    def test_torn_manifest_is_removed(self, tmp_path):
        (tmp_path / f"{MANIFEST_PREFIX}torn.json").write_text("{not json")
        assert reclaim_stale(tmp_path) == []
        assert not list(tmp_path.glob(f"{MANIFEST_PREFIX}*.json"))

    def test_missing_dir_is_noop(self, tmp_path):
        assert reclaim_stale(tmp_path / "nope") == []
