"""Property-based round-trip tests for topology serialization.

Random valley-free worlds (the generator strategy from the BGP property
tests) must survive ``internet_to_dict``/``internet_from_dict`` with
routing-equivalent results.
"""

from hypothesis import given, settings

from repro.bgp import propagate
from repro.topology import internet_from_dict, internet_to_dict
from repro.topology.generator import Internet, TopologyConfig
from repro.topology.wan import PointOfPresence, PrivateWan
from repro.geo import city_named

from test_properties_bgp import random_world


def _wrap_as_internet(graph, origin) -> Internet:
    """Wrap a bare graph in an Internet so serialization applies."""
    pops = [
        PointOfPresence("aaa", city_named("New York")),
        PointOfPresence("bbb", city_named("London")),
    ]
    wan = PrivateWan(pops, [("aaa", "bbb")])
    tier1s = tuple(a.asn for a in graph.ases() if 10 <= a.asn < 100)
    transits = tuple(a.asn for a in graph.ases() if 100 <= a.asn < 1000)
    eyeballs = tuple(a.asn for a in graph.ases() if a.asn >= 1000)
    return Internet(
        graph=graph,
        provider_asn=tier1s[0] if tier1s else origin,
        wan=wan,
        tier1_asns=tier1s,
        transit_asns=transits,
        eyeball_asns=eyeballs,
        ixp_cities=(),
        dc_pop_code="aaa",
        config=TopologyConfig(
            pop_cities=(("aaa", "New York"), ("bbb", "London")),
            wan_backbone=(("aaa", "bbb"),),
            dc_pop_code="aaa",
        ),
    )


@given(random_world())
@settings(max_examples=25, deadline=None)
def test_serialization_roundtrip_preserves_routing(world):
    graph, origin = world
    internet = _wrap_as_internet(graph, origin)
    loaded = internet_from_dict(internet_to_dict(internet))

    assert len(loaded.graph) == len(graph)
    assert {l.key() for l in loaded.graph.links()} == {
        l.key() for l in graph.links()
    }
    original = propagate(graph, origin)
    rebuilt = propagate(loaded.graph, origin)
    for asys in graph.ases():
        a = original.best(asys.asn)
        b = rebuilt.best(asys.asn)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.path == b.path
            assert a.pref is b.pref
