"""Property-based round-trip tests for serialized state.

Random valley-free worlds (the generator strategy from the BGP property
tests) must survive ``internet_to_dict``/``internet_from_dict`` with
routing-equivalent results; quantile sketches and ingest snapshots must
survive their JSON forms byte-identically — including a trip through a
campaign checkpoint and resume, where a half-finished ingest campaign's
merged snapshot must match the uninterrupted run's bytes exactly.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bgp import propagate
from repro.topology import internet_from_dict, internet_to_dict
from repro.topology.generator import Internet, TopologyConfig
from repro.topology.wan import PointOfPresence, PrivateWan
from repro.geo import city_named

from test_properties_bgp import random_world


def _wrap_as_internet(graph, origin) -> Internet:
    """Wrap a bare graph in an Internet so serialization applies."""
    pops = [
        PointOfPresence("aaa", city_named("New York")),
        PointOfPresence("bbb", city_named("London")),
    ]
    wan = PrivateWan(pops, [("aaa", "bbb")])
    tier1s = tuple(a.asn for a in graph.ases() if 10 <= a.asn < 100)
    transits = tuple(a.asn for a in graph.ases() if 100 <= a.asn < 1000)
    eyeballs = tuple(a.asn for a in graph.ases() if a.asn >= 1000)
    return Internet(
        graph=graph,
        provider_asn=tier1s[0] if tier1s else origin,
        wan=wan,
        tier1_asns=tier1s,
        transit_asns=transits,
        eyeball_asns=eyeballs,
        ixp_cities=(),
        dc_pop_code="aaa",
        config=TopologyConfig(
            pop_cities=(("aaa", "New York"), ("bbb", "London")),
            wan_backbone=(("aaa", "bbb"),),
            dc_pop_code="aaa",
        ),
    )


@given(random_world())
@settings(max_examples=25, deadline=None)
def test_serialization_roundtrip_preserves_routing(world):
    graph, origin = world
    internet = _wrap_as_internet(graph, origin)
    loaded = internet_from_dict(internet_to_dict(internet))

    assert len(loaded.graph) == len(graph)
    assert {l.key() for l in loaded.graph.links()} == {
        l.key() for l in graph.links()
    }
    original = propagate(graph, origin)
    rebuilt = propagate(loaded.graph, origin)
    for asys in graph.ases():
        a = original.best(asys.asn)
        b = rebuilt.best(asys.asn)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.path == b.path
            assert a.pref is b.pref


# -- streaming sketches and snapshots ----------------------------------------


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False, width=32),
        min_size=0,
        max_size=300,
    ),
    st.sampled_from(["centroid", "p2"]),
)
@settings(max_examples=100, deadline=None)
def test_sketch_json_roundtrip_byte_identical(values, kind):
    from repro.stream import make_sketch, sketch_from_json

    sketch = make_sketch(kind)
    if values:
        sketch.update_batch(np.asarray(values))
    text = sketch.to_json()
    assert sketch_from_json(text).to_json() == text


def _shard_studies():
    from repro.stream import IngestShardStudy

    return [
        IngestShardStudy(
            seed=5, n_prefixes=40, days=0.5, shard=shard, n_shards=3
        )
        for shard in range(3)
    ]


def _merged_bytes(results) -> str:
    from repro.stream import merge_snapshot_artifacts

    return merge_snapshot_artifacts(results).to_json()


def test_snapshot_survives_checkpoint_resume(tmp_path):
    """resume ∘ crash ≡ uninterrupted run, down to the snapshot bytes.

    A sharded ingest campaign is interrupted after one shard; the
    resumed campaign restores that shard's result — snapshot artifact
    included — from the checkpoint payload, and the cross-shard merge
    is byte-identical to the run that never crashed.
    """
    from repro.runner import CampaignRunner, JobSpec
    from repro.runner.campaign import result_to_payload
    from repro.runner.checkpoint import (
        CampaignCheckpoint,
        CheckpointEntry,
        campaign_fingerprint,
    )

    studies = _shard_studies()
    specs = [JobSpec.from_study(study) for study in studies]

    uninterrupted = CampaignRunner().run(specs)
    baseline = _merged_bytes(uninterrupted.results)

    # Simulate the crash: journal only shard 0, as the dead campaign
    # would have, then resume the remainder.
    checkpoint = CampaignCheckpoint(
        tmp_path, campaign_fingerprint(specs)
    )
    first = studies[0].run()
    checkpoint.record(
        CheckpointEntry(
            spec_hash=specs[0].content_hash,
            payload=result_to_payload(first),
            elapsed_s=1.0,
            metrics={
                "study": specs[0].describe(),
                "seed": specs[0].seed,
                "spec_hash": specs[0].content_hash,
                "status": "ran",
                "attempts": 1,
                "elapsed_s": 1.0,
            },
        )
    )
    checkpoint.write()

    resumed = CampaignRunner(checkpoint_dir=tmp_path, resume=True).run(specs)
    assert _merged_bytes(resumed.results) == baseline


def test_snapshot_survives_result_cache(tmp_path):
    """The artifacts channel survives the content-addressed store: a
    cache-served campaign merges to the same bytes as the fresh one."""
    from repro.runner import CampaignRunner, JobSpec, ResultStore

    specs = [JobSpec.from_study(study) for study in _shard_studies()]
    fresh = CampaignRunner(store=ResultStore(tmp_path)).run(specs)
    cached = CampaignRunner(store=ResultStore(tmp_path)).run(specs)
    assert all(m.status == "hit" for m in cached.metrics)
    assert _merged_bytes(cached.results) == _merged_bytes(fresh.results)
