"""Tests for the TCP transfer-time model."""

import pytest

from repro.errors import AnalysisError
from repro.netmodel import (
    TcpPath,
    goodput_mbps,
    split_benefit_ms,
    split_transfer_time_s,
    transfer_time_s,
)


class TestTcpPath:
    def test_validation(self):
        with pytest.raises(AnalysisError):
            TcpPath(rtt_ms=0.0, bottleneck_mbps=10.0)
        with pytest.raises(AnalysisError):
            TcpPath(rtt_ms=10.0, bottleneck_mbps=0.0)


class TestTransferTime:
    def test_size_validation(self):
        with pytest.raises(AnalysisError):
            transfer_time_s(TcpPath(50.0, 10.0), 0.0)

    def test_warm_is_pure_drain(self):
        path = TcpPath(rtt_ms=100.0, bottleneck_mbps=8.0)
        # 1 MB at 8 Mbps = 1 second, no handshake or slow start.
        assert transfer_time_s(path, 1.0, warm=True) == pytest.approx(1.0)

    def test_cold_slower_than_warm(self):
        path = TcpPath(rtt_ms=100.0, bottleneck_mbps=50.0)
        assert transfer_time_s(path, 1.0) > transfer_time_s(path, 1.0, warm=True)

    def test_monotone_in_size(self):
        path = TcpPath(rtt_ms=80.0, bottleneck_mbps=20.0)
        times = [transfer_time_s(path, s) for s in (0.1, 0.5, 2.0, 10.0)]
        assert times == sorted(times)

    def test_monotone_in_rtt(self):
        fast = transfer_time_s(TcpPath(20.0, 20.0), 1.0)
        slow = transfer_time_s(TcpPath(200.0, 20.0), 1.0)
        assert slow > fast

    def test_slow_start_round_count(self):
        """A transfer needing n doublings takes ~n+1 RTTs before line rate."""
        # 14.6 KB IW; 100 KB payload: windows 14.6, 29.2, 58.4 -> 3 rounds.
        # Huge bottleneck so the cap never binds.
        path = TcpPath(rtt_ms=100.0, bottleneck_mbps=10_000.0)
        t = transfer_time_s(path, 0.1)
        # handshake + 3 send rounds = 4 RTTs
        assert t == pytest.approx(0.4, abs=0.05)

    def test_large_transfer_bottleneck_dominated(self):
        path = TcpPath(rtt_ms=100.0, bottleneck_mbps=50.0)
        t = transfer_time_s(path, 100.0)
        drain = 100.0 * 8.0 / 50.0
        assert t == pytest.approx(drain, rel=0.1)


class TestGoodput:
    def test_goodput_below_bottleneck(self):
        path = TcpPath(rtt_ms=100.0, bottleneck_mbps=50.0)
        assert goodput_mbps(path, 10.0) < 50.0

    def test_goodput_rises_with_size(self):
        path = TcpPath(rtt_ms=100.0, bottleneck_mbps=50.0)
        assert goodput_mbps(path, 10.0) > goodput_mbps(path, 0.1)

    def test_rtt_matters_less_for_large_transfers(self):
        fast = TcpPath(rtt_ms=20.0, bottleneck_mbps=50.0)
        slow = TcpPath(rtt_ms=200.0, bottleneck_mbps=50.0)
        small_ratio = goodput_mbps(fast, 0.1) / goodput_mbps(slow, 0.1)
        large_ratio = goodput_mbps(fast, 50.0) / goodput_mbps(slow, 50.0)
        assert small_ratio > large_ratio
        assert large_ratio == pytest.approx(1.0, abs=0.2)


class TestSplit:
    def test_split_helps_long_rtt_small_objects(self):
        """The §4 premise: split TCP wins over long distances because the
        slow-start ramp happens on the short front segment."""
        end_to_end = TcpPath(rtt_ms=200.0, bottleneck_mbps=50.0)
        front = TcpPath(rtt_ms=20.0, bottleneck_mbps=50.0)
        back = TcpPath(rtt_ms=180.0, bottleneck_mbps=1000.0)
        assert split_benefit_ms(end_to_end, front, back, 0.25) > 100.0

    def test_split_useless_for_short_rtt(self):
        end_to_end = TcpPath(rtt_ms=10.0, bottleneck_mbps=50.0)
        front = TcpPath(rtt_ms=5.0, bottleneck_mbps=50.0)
        back = TcpPath(rtt_ms=5.0, bottleneck_mbps=1000.0)
        assert abs(split_benefit_ms(end_to_end, front, back, 0.25)) < 50.0

    def test_warm_backend_beats_cold(self):
        front = TcpPath(rtt_ms=20.0, bottleneck_mbps=50.0)
        back = TcpPath(rtt_ms=180.0, bottleneck_mbps=1000.0)
        warm = split_transfer_time_s(front, back, 1.0, warm_backend=True)
        cold = split_transfer_time_s(front, back, 1.0, warm_backend=False)
        assert warm < cold
