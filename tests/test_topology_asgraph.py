"""Tests for the AS graph: ASes, links, relationships, invariants."""

import pytest

from repro.errors import TopologyError
from repro.geo import city_named
from repro.topology import (
    ASGraph,
    ASRole,
    AutonomousSystem,
    PeeringKind,
    Relationship,
)
from repro.topology.asgraph import Link, link_between

from conftest import E1, E2, PROVIDER, T1A, T1B, TR1, TR2


NY = city_named("New York")
CHI = city_named("Chicago")


def make_as(asn, role=ASRole.TRANSIT, cities=(NY,)):
    return AutonomousSystem(asn, f"as{asn}", role, tuple(cities))


class TestAutonomousSystem:
    def test_home_city_is_first(self):
        asys = make_as(5, cities=(CHI, NY))
        assert asys.home_city == CHI

    def test_rejects_nonpositive_asn(self):
        with pytest.raises(TopologyError):
            make_as(0)

    def test_rejects_empty_footprint(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(5, "x", ASRole.STUB, ())

    def test_rejects_subunit_inflation(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(5, "x", ASRole.STUB, (NY,), backbone_inflation=0.5)

    def test_rejects_negative_user_weight(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(5, "x", ASRole.STUB, (NY,), user_weight=-1.0)


class TestLink:
    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            Link(5, 5, Relationship.PEER, (NY,))

    def test_unordered_endpoints_rejected(self):
        with pytest.raises(TopologyError):
            Link(9, 5, Relationship.PEER, (NY,))

    def test_customer_must_be_endpoint(self):
        with pytest.raises(TopologyError):
            Link(5, 9, Relationship.CUSTOMER, (NY,), customer_asn=7)

    def test_peer_cannot_have_customer(self):
        with pytest.raises(TopologyError):
            Link(5, 9, Relationship.PEER, (NY,), customer_asn=5)

    def test_needs_city(self):
        with pytest.raises(TopologyError):
            Link(5, 9, Relationship.PEER, ())

    def test_provider_asn(self):
        link = Link(5, 9, Relationship.CUSTOMER, (NY,), customer_asn=5)
        assert link.provider_asn == 9
        peer = Link(5, 9, Relationship.PEER, (NY,))
        assert peer.provider_asn is None

    def test_other_endpoint(self):
        link = Link(5, 9, Relationship.PEER, (NY,))
        assert link.other(5) == 9
        assert link.other(9) == 5
        with pytest.raises(TopologyError):
            link.other(7)

    def test_link_between_normalizes_order(self):
        link = link_between(9, 5, Relationship.CUSTOMER, [NY], customer_asn=9)
        assert (link.a, link.b) == (5, 9)
        assert link.customer_asn == 9
        assert link.provider_asn == 5


class TestASGraph:
    def test_duplicate_asn_rejected(self):
        graph = ASGraph()
        graph.add_as(make_as(5))
        with pytest.raises(TopologyError):
            graph.add_as(make_as(5))

    def test_link_requires_both_endpoints(self):
        graph = ASGraph()
        graph.add_as(make_as(5))
        with pytest.raises(TopologyError):
            graph.add_link(link_between(5, 9, Relationship.PEER, [NY]))

    def test_duplicate_link_rejected(self):
        graph = ASGraph()
        graph.add_as(make_as(5))
        graph.add_as(make_as(9))
        graph.add_link(link_between(5, 9, Relationship.PEER, [NY]))
        with pytest.raises(TopologyError):
            graph.add_link(link_between(9, 5, Relationship.PEER, [NY]))

    def test_unknown_as_lookup(self):
        graph = ASGraph()
        with pytest.raises(TopologyError):
            graph.get(42)
        with pytest.raises(TopologyError):
            graph.neighbors(42)

    def test_relationship_accessors(self, toy_graph):
        assert set(toy_graph.providers(E1)) == {TR1}
        assert set(toy_graph.customers(T1A)) == {TR1, PROVIDER}
        assert set(toy_graph.peers(PROVIDER)) == {E1, TR2}
        assert set(toy_graph.peers(T1A)) == {T1B}

    def test_customer_cone(self, toy_graph):
        assert toy_graph.customer_cone(TR1) == frozenset({TR1, E1})
        assert toy_graph.customer_cone(T1A) == frozenset(
            {T1A, TR1, E1, PROVIDER}
        )
        assert toy_graph.customer_cone(E2) == frozenset({E2})

    def test_remove_link(self, toy_graph):
        removed = toy_graph.remove_link(PROVIDER, E1)
        assert removed.relationship is Relationship.PEER
        assert not toy_graph.has_link(PROVIDER, E1)
        assert E1 not in toy_graph.neighbors(PROVIDER)
        with pytest.raises(TopologyError):
            toy_graph.remove_link(PROVIDER, E1)

    def test_validate_accepts_dag(self, toy_graph):
        toy_graph.validate()

    def test_validate_rejects_provider_cycle(self):
        graph = ASGraph()
        for asn in (5, 6, 7):
            graph.add_as(make_as(asn))
        graph.add_link(link_between(5, 6, Relationship.CUSTOMER, [NY], customer_asn=5))
        graph.add_link(link_between(6, 7, Relationship.CUSTOMER, [NY], customer_asn=6))
        graph.add_link(link_between(5, 7, Relationship.CUSTOMER, [NY], customer_asn=7))
        with pytest.raises(TopologyError):
            graph.validate()

    def test_len_and_contains(self, toy_graph):
        assert len(toy_graph) == 7
        assert PROVIDER in toy_graph
        assert 999 not in toy_graph

    def test_peering_kind_recorded(self, toy_graph):
        assert toy_graph.link(PROVIDER, E1).kind is PeeringKind.PRIVATE
        assert toy_graph.link(PROVIDER, TR2).kind is PeeringKind.PUBLIC
