"""Tests for RIB dumps, path statistics, and valley-free audits."""

import pytest

from repro.errors import RoutingError
from repro.bgp import (
    RoutePref,
    dump_rib,
    path_statistics,
    propagate,
    route_visibility,
    valley_free_violations,
)

from conftest import E1, E2, PROVIDER


class TestDumpRib:
    def test_sorted_and_complete(self, toy_graph):
        table = propagate(toy_graph, E1)
        rows = dump_rib(table)
        assert [r.asn for r in rows] == sorted(r.asn for r in rows)
        assert len(rows) == len(toy_graph)
        for row in rows:
            assert row.as_path[0] == row.asn
            assert row.as_path[-1] == E1
            assert row.advertised_length >= len(row.as_path) - 1

    def test_origin_row(self, toy_graph):
        table = propagate(toy_graph, E1)
        origin_row = next(r for r in dump_rib(table) if r.asn == E1)
        assert origin_row.pref is RoutePref.ORIGIN
        assert origin_row.as_path == (E1,)


class TestPathStatistics:
    def test_aggregates(self, toy_graph):
        tables = [propagate(toy_graph, origin) for origin in (E1, E2)]
        stats = path_statistics(tables)
        assert stats.n_routes == 2 * (len(toy_graph) - 1)
        assert 1.0 <= stats.mean_hops <= stats.max_hops
        assert sum(stats.hop_histogram.values()) == stats.n_routes
        assert sum(stats.pref_mix.values()) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(RoutingError):
            path_statistics([])

    def test_generated_world_hop_counts(self, small_internet):
        tables = [
            propagate(small_internet.graph, asn)
            for asn in small_internet.eyeball_asns[:10]
        ]
        stats = path_statistics(tables)
        # A 3-tier hierarchy keeps paths short, as on the real Internet.
        assert stats.max_hops <= 7
        assert 1.5 <= stats.mean_hops <= 5.0


class TestValleyFreeAudit:
    def test_clean_on_propagated_tables(self, small_internet):
        for origin in list(small_internet.eyeball_asns[:5]) + [
            small_internet.provider_asn
        ]:
            table = propagate(small_internet.graph, origin)
            assert valley_free_violations(small_internet.graph, table) == []

    def test_detects_injected_violation(self, toy_graph):
        """A hand-corrupted route (peer step after going down) is caught."""
        from repro.bgp import Route

        table = propagate(toy_graph, E2)
        # Fabricate: provider -> E1 (peer, down from provider's view is a
        # peer step) then E1 -> TR1 (up!): up-after-peer violates.
        from conftest import TR1

        bad = Route(
            path=(PROVIDER, E1, TR1),
            pref=RoutePref.PEER,
            advertised_length=2,
        )
        table._routes[PROVIDER] = bad
        violations = valley_free_violations(toy_graph, table)
        assert (PROVIDER, bad.path) in violations


class TestVisibility:
    def test_full_visibility_in_hierarchy(self, toy_graph):
        table = propagate(toy_graph, E1)
        assert route_visibility(toy_graph, table) == pytest.approx(1.0)

    def test_partial_after_partition(self, toy_graph):
        from conftest import TR2

        toy_graph.remove_link(E2, TR2)
        table = propagate(toy_graph, E2)
        assert route_visibility(toy_graph, table) < 1.0
