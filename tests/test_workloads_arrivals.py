"""Tests for diurnal request-arrival sampling."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.workloads import sample_arrivals


class TestSampleArrivals:
    def test_sorted_within_horizon(self):
        rng = np.random.default_rng(0)
        times = sample_arrivals(rng, 500, horizon_hours=48.0, lon=0.0)
        assert times.shape == (500,)
        assert (np.diff(times) >= 0).all()
        assert times[0] >= 0.0
        assert times[-1] <= 48.0

    def test_follows_diurnal_cycle(self):
        """More arrivals land near the local evening peak than the trough."""
        rng = np.random.default_rng(1)
        times = sample_arrivals(rng, 20_000, horizon_hours=240.0, lon=0.0)
        local = times % 24.0
        near_peak = ((local >= 18.0) & (local <= 22.0)).mean()
        near_trough = ((local >= 6.0) & (local <= 10.0)).mean()
        assert near_peak > near_trough * 1.3

    def test_longitude_shifts_peak(self):
        rng = np.random.default_rng(2)
        east = sample_arrivals(rng, 20_000, horizon_hours=240.0, lon=90.0)
        local_utc = east % 24.0
        # Local 20:00 at lon 90E is 14:00 UTC.
        near_shifted_peak = ((local_utc >= 12.0) & (local_utc <= 16.0)).mean()
        near_old_peak = ((local_utc >= 18.0) & (local_utc <= 22.0)).mean()
        assert near_shifted_peak > near_old_peak

    def test_deterministic(self):
        a = sample_arrivals(np.random.default_rng(5), 100, 24.0, 10.0)
        b = sample_arrivals(np.random.default_rng(5), 100, 24.0, 10.0)
        assert np.array_equal(a, b)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(MeasurementError):
            sample_arrivals(rng, 0, 24.0, 0.0)
        with pytest.raises(MeasurementError):
            sample_arrivals(rng, 10, 0.0, 0.0)
