"""Tests for the beacon measurement campaign."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.cdn import BeaconConfig, CdnDeployment, run_beacon_campaign


@pytest.fixture(scope="module")
def deployment(small_internet):
    return CdnDeployment(small_internet)


@pytest.fixture(scope="module")
def dataset(deployment, small_prefixes):
    return run_beacon_campaign(
        deployment,
        small_prefixes,
        BeaconConfig(days=1.0, requests_per_prefix=24, seed=6),
    )


class TestConfigValidation:
    def test_defaults(self):
        BeaconConfig()

    def test_positive_days(self):
        with pytest.raises(MeasurementError):
            BeaconConfig(days=0)

    def test_two_requests_minimum(self):
        with pytest.raises(MeasurementError):
            BeaconConfig(requests_per_prefix=1)

    def test_congestion_sized_to_horizon(self):
        cfg = BeaconConfig(days=2.5)
        assert cfg.congestion_config().horizon_hours == pytest.approx(60.0)


class TestDatasetShape:
    def test_arrays_aligned(self, dataset, deployment):
        n_fe = len(deployment.front_ends)
        assert dataset.anycast_rtt.shape == (dataset.n_prefixes, 24)
        assert dataset.unicast_rtt.shape == (dataset.n_prefixes, 24, n_fe)
        assert dataset.times_h.shape == (dataset.n_prefixes, 24)
        assert len(dataset.catchments) == dataset.n_prefixes
        assert len(dataset.fe_codes) == dataset.n_prefixes

    def test_catchment_column_first(self, dataset):
        for i in range(dataset.n_prefixes):
            assert dataset.fe_codes[i][0] == dataset.catchments[i]

    def test_fe_codes_cover_all_front_ends(self, dataset, deployment):
        expected = {p.code for p in deployment.front_ends}
        for codes in dataset.fe_codes:
            assert set(codes) == expected

    def test_times_sorted_within_horizon(self, dataset):
        for i in range(dataset.n_prefixes):
            times = dataset.times_h[i]
            assert (np.diff(times) >= 0).all()
            assert times[0] >= 0 and times[-1] <= 24.0

    def test_rtts_physical(self, dataset):
        assert (dataset.anycast_rtt > 0).all()
        finite = dataset.unicast_rtt[~np.isnan(dataset.unicast_rtt)]
        assert (finite > 0).all()


class TestMeasurementSemantics:
    def test_anycast_close_to_catchment_unicast(self, dataset):
        """Anycast and unicast-to-the-catchment share the path, so their
        per-prefix medians must nearly coincide."""
        diffs = []
        for i in range(dataset.n_prefixes):
            anycast = np.median(dataset.anycast_rtt[i])
            catchment_rtt = dataset.unicast_rtt[i, :, 0]
            if np.isnan(catchment_rtt).all():
                continue
            diffs.append(abs(anycast - np.median(catchment_rtt)))
        assert np.median(diffs) < 5.0

    def test_best_nearby_not_above_catchment(self, dataset):
        best = dataset.best_nearby_unicast()
        catchment = dataset.unicast_rtt[:, :, 0]
        valid = ~np.isnan(best) & ~np.isnan(catchment)
        assert (best[valid] <= catchment[valid] + 1e-9).all()

    def test_weights_and_slash24(self, dataset):
        assert (dataset.slash24_weights() >= dataset.weights()).all()

    def test_column_of(self, dataset):
        assert dataset.column_of(0, dataset.fe_codes[0][3]) == 3
        assert dataset.column_of(0, "not-a-code") is None

    def test_deterministic(self, deployment, small_prefixes):
        cfg = BeaconConfig(days=0.5, requests_per_prefix=8, seed=9)
        a = run_beacon_campaign(deployment, small_prefixes, cfg)
        b = run_beacon_campaign(deployment, small_prefixes, cfg)
        assert np.array_equal(a.anycast_rtt, b.anycast_rtt)
        assert np.array_equal(a.unicast_rtt, b.unicast_rtt, equal_nan=True)

    def test_requires_prefixes(self, deployment):
        with pytest.raises(MeasurementError):
            run_beacon_campaign(deployment, [])
