"""Shared fixtures: a hand-built toy AS graph and small generated worlds.

Expensive fixtures are session-scoped; tests must treat them as
read-only (anything mutating a topology builds its own).
"""

from __future__ import annotations

import pytest

from repro.geo import city_named
from repro.topology import (
    ASGraph,
    ASRole,
    AutonomousSystem,
    Internet,
    PeeringKind,
    Relationship,
    TopologyConfig,
    build_internet,
)
from repro.topology.asgraph import link_between
from repro.topology.generator import DEFAULT_POP_CITIES
from repro.workloads import assign_ldns, generate_client_prefixes

#: A compact PoP set for tests that do not need the full footprint.
SMALL_POPS = tuple(
    (code, name)
    for code, name in DEFAULT_POP_CITIES
    if code in ("iad", "ord", "cbf", "sfo", "lhr", "fra", "bom", "sin", "nrt", "gru", "syd", "jnb")
)

# Toy-graph ASNs, referenced throughout the BGP tests.
PROVIDER = 1
T1A, T1B = 10, 11
TR1, TR2 = 100, 101
E1, E2 = 1000, 1001


def build_toy_graph() -> ASGraph:
    """A small, hand-wired topology with known-best routes.

    Shape::

        T1A ---peer--- T1B          Tier-1 clique
         |  \\           |
        TR1  \\         TR2         transits (customers of one Tier-1)
         |    provider   |
         E1   /    \\    E2          eyeballs (customers of transits)
          peer      public peer
        (E1-provider PNI, TR2-provider public peering)

    The provider buys transit from T1A.  E1 additionally has a PNI with
    the provider; TR2 peers with it over a public exchange.
    """
    graph = ASGraph()
    ny = city_named("New York")
    chi = city_named("Chicago")
    lon = city_named("London")
    fra = city_named("Frankfurt")
    graph.add_as(
        AutonomousSystem(PROVIDER, "provider", ASRole.CONTENT, (ny, lon))
    )
    graph.add_as(AutonomousSystem(T1A, "t1a", ASRole.TIER1, (ny, chi, lon, fra)))
    graph.add_as(AutonomousSystem(T1B, "t1b", ASRole.TIER1, (ny, chi, lon, fra)))
    graph.add_as(AutonomousSystem(TR1, "tr1", ASRole.TRANSIT, (ny, chi)))
    graph.add_as(AutonomousSystem(TR2, "tr2", ASRole.TRANSIT, (lon, fra)))
    graph.add_as(AutonomousSystem(E1, "e1", ASRole.EYEBALL, (chi,), user_weight=5.0))
    graph.add_as(AutonomousSystem(E2, "e2", ASRole.EYEBALL, (fra,), user_weight=3.0))

    graph.add_link(link_between(T1A, T1B, Relationship.PEER, [ny, lon]))
    graph.add_link(
        link_between(TR1, T1A, Relationship.CUSTOMER, [ny, chi], customer_asn=TR1)
    )
    graph.add_link(
        link_between(TR2, T1B, Relationship.CUSTOMER, [lon, fra], customer_asn=TR2)
    )
    graph.add_link(
        link_between(E1, TR1, Relationship.CUSTOMER, [chi], customer_asn=E1)
    )
    graph.add_link(
        link_between(E2, TR2, Relationship.CUSTOMER, [fra], customer_asn=E2)
    )
    graph.add_link(
        link_between(
            PROVIDER, T1A, Relationship.CUSTOMER, [ny, lon], customer_asn=PROVIDER
        )
    )
    graph.add_link(
        link_between(
            PROVIDER,
            E1,
            Relationship.PEER,
            [ny],
            kind=PeeringKind.PRIVATE,
        )
    )
    graph.add_link(
        link_between(
            PROVIDER,
            TR2,
            Relationship.PEER,
            [lon],
            kind=PeeringKind.PUBLIC,
        )
    )
    return graph


@pytest.fixture
def toy_graph() -> ASGraph:
    """A fresh toy graph per test (mutation-safe)."""
    return build_toy_graph()


@pytest.fixture(scope="session")
def small_config() -> TopologyConfig:
    """Small generated-Internet configuration shared by many tests."""
    return TopologyConfig(
        seed=7,
        n_tier1=4,
        n_transit=21,
        n_eyeball=60,
        pop_cities=SMALL_POPS,
        # Curated backbone preserving the Section 3.3.2 property: India
        # attaches to the WAN only via Singapore and the Pacific.
        wan_backbone=(
            ("iad", "ord"),
            ("ord", "cbf"),
            ("cbf", "sfo"),
            ("iad", "gru"),
            ("iad", "lhr"),
            ("lhr", "fra"),
            ("lhr", "jnb"),
            ("bom", "sin"),
            ("sin", "nrt"),
            ("nrt", "sfo"),
            ("sin", "syd"),
        ),
        # Guarantee a private/public route-class mix for the Figure 2
        # analyses even on this small world.
        transit_public_peering_prob=1.0,
    )


@pytest.fixture(scope="session")
def small_internet(small_config) -> Internet:
    """A small generated Internet (treat as read-only)."""
    return build_internet(small_config)


@pytest.fixture(scope="session")
def small_prefixes(small_internet):
    """Client prefixes with LDNS assignments over the small Internet."""
    prefixes = generate_client_prefixes(small_internet, 60, seed=11)
    prefixes, _resolvers = assign_ldns(prefixes, small_internet, seed=11)
    return prefixes
