"""The call-graph layer and the cross-module rules built on it.

Covers, in order: graph construction (symbols, edge resolution
strategies, re-export aliases), traversals, byte-stable export (pinned
across repeated builds *and* shuffled discovery orders), relative
imports in :class:`ImportMap`, the stale-suppression check
(``SUPPRESS001``), one positive and one negative case per graph rule
(DET001 / FORK001 / SHM001 / PAR001), the regression pinning the lane
signature fix in ``repro.edgefabric.sampler``, and the CLI surfaces
(``lint graph --out/--dot``, ``--format sarif``, ``--changed``).
"""

import ast
import json
import random
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    FileContext,
    ImportMap,
    build_graph,
    lint_paths,
    render_sarif,
)
from repro.lint.checks.lanesignature import LaneSignatureRule, lane_groups
from repro.lint.engine import SUPPRESS_RULE_ID
from repro.lint.graph import CallGraph
from repro.lint.rules import resolve_relative_base

REPO_ROOT = Path(__file__).resolve().parent.parent

MINI_REPO = {
    "src/repro/mini/__init__.py": """
        from repro.mini.core import helper
        """,
    "src/repro/mini/core.py": """
        import numpy as np

        from repro.mini.util import leaf

        def helper():
            return leaf()

        def seeded(seed):
            return np.random.default_rng(seed)  # repro-lint: disable=RNG002
        """,
    "src/repro/mini/util.py": """
        import numpy as np

        def leaf():
            return np.random.default_rng(3).normal()  # repro-lint: disable=RNG002
        """,
    "src/repro/mini/model.py": """
        from dataclasses import dataclass

        @dataclass
        class Engine:
            def compute(self):
                return self.step()

            def step(self):
                return 1

        def drive(engine: Engine):
            return engine.compute()

        def build():
            e = Engine()
            return e.step()
        """,
}


def write_tree(root: Path, files) -> None:
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")


@pytest.fixture
def mini_repo(tmp_path):
    write_tree(tmp_path, MINI_REPO)
    return tmp_path


def mini_graph(repo: Path) -> CallGraph:
    return build_graph([repo / "src"], root=repo)


class TestGraphConstruction:
    def test_symbols_and_import_edges(self, mini_repo):
        graph = mini_graph(mini_repo)
        assert "repro.mini.core.helper" in graph.functions
        info = graph.functions["repro.mini.core.seeded"]
        assert info.params == ("seed",)
        assert info.relpath == "src/repro/mini/core.py"
        assert "repro.mini.util.leaf" in graph.successors("repro.mini.core.helper")
        assert "numpy.random.default_rng" in graph.successors(
            "repro.mini.util.leaf"
        )

    def test_reexport_alias_canonicalizes(self, mini_repo):
        graph = mini_graph(mini_repo)
        assert graph.canonical("repro.mini.helper") == "repro.mini.core.helper"

    def test_annotation_self_and_local_ctor_edges(self, mini_repo):
        graph = mini_graph(mini_repo)
        # Parameter annotation: drive(engine: Engine) → Engine.compute.
        assert "repro.mini.model.Engine.compute" in graph.successors(
            "repro.mini.model.drive"
        )
        # self-dispatch through the enclosing class.
        assert "repro.mini.model.Engine.step" in graph.successors(
            "repro.mini.model.Engine.compute"
        )
        # x = Ctor(...) then x.method().
        assert "repro.mini.model.Engine.step" in graph.successors(
            "repro.mini.model.build"
        )

    def test_call_line_is_recorded(self, mini_repo):
        graph = mini_graph(mini_repo)
        line = graph.call_line("repro.mini.core.helper", "repro.mini.util.leaf")
        assert isinstance(line, int) and line > 1


class TestTraversal:
    def test_forward_and_reverse_cones(self, mini_repo):
        graph = mini_graph(mini_repo)
        forward = graph.reachable_from(["repro.mini.core.helper"])
        assert {"repro.mini.util.leaf", "numpy.random.default_rng"} <= forward
        backward = graph.reachers_of(["numpy.random.default_rng"])
        assert {
            "repro.mini.core.helper",
            "repro.mini.core.seeded",
            "repro.mini.util.leaf",
        } <= backward
        assert "repro.mini.model.drive" not in backward

    def test_sample_path_is_shortest_witness(self, mini_repo):
        graph = mini_graph(mini_repo)
        path = graph.sample_path(
            "repro.mini.core.helper", {"numpy.random.default_rng"}
        )
        assert path == [
            "repro.mini.core.helper",
            "repro.mini.util.leaf",
            "numpy.random.default_rng",
        ]
        assert graph.sample_path("repro.mini.model.drive", {"absent"}) == []


class TestDeterminism:
    def test_json_is_byte_stable_across_builds(self, mini_repo):
        first = mini_graph(mini_repo).to_json()
        second = mini_graph(mini_repo).to_json()
        assert first == second

    def test_json_is_stable_under_shuffled_context_order(self, mini_repo):
        paths = sorted((mini_repo / "src").rglob("*.py"))
        contexts = [FileContext.parse(p, mini_repo) for p in paths]
        reference = CallGraph.build(contexts).to_json()
        for seed in range(3):
            shuffled = list(contexts)
            random.Random(seed).shuffle(shuffled)
            assert CallGraph.build(shuffled).to_json() == reference

    def test_findings_stable_under_shuffled_path_order(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/a.py": """
                    import random

                    def one():
                        return random.random()
                    """,
                "src/repro/b.py": """
                    import time

                    def two():
                        return time.time()
                    """,
            },
        )
        paths = sorted((tmp_path / "src").rglob("*.py"))
        reference = lint_paths(paths, root=tmp_path)
        assert reference  # both files must actually produce findings
        for seed in range(3):
            shuffled = list(paths)
            random.Random(seed).shuffle(shuffled)
            assert lint_paths(shuffled, root=tmp_path) == reference


class TestRelativeImports:
    def test_resolve_relative_base(self):
        assert resolve_relative_base("repro.edge", 1, "routes") == (
            "repro.edge.routes"
        )
        assert resolve_relative_base("repro.edge", 1, None) == "repro.edge"
        assert resolve_relative_base("repro.edge", 2, "other") == "repro.other"
        assert resolve_relative_base("repro", 2, "x") is None
        assert resolve_relative_base("", 1, "x") is None

    def test_import_map_resolves_relative_aliases(self):
        tree = ast.parse(
            "from . import routes\n"
            "from .routes import bgp_routes\n"
            "from ..other import thing\n"
        )
        imports = ImportMap(tree, package="repro.edge")
        assert imports.aliases["routes"] == "repro.edge.routes"
        assert imports.aliases["bgp_routes"] == "repro.edge.routes.bgp_routes"
        assert imports.aliases["thing"] == "repro.other.thing"

    def test_relative_imports_skipped_without_package(self):
        tree = ast.parse("from . import routes\n")
        assert ImportMap(tree).aliases == {}

    def test_file_context_threads_package(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/pkg/__init__.py": "from . import sibling\n",
                "src/repro/pkg/mod.py": "from .sibling import f\n",
                "src/repro/pkg/sibling.py": "def f():\n    return 1\n",
            },
        )
        mod = FileContext.parse(tmp_path / "src/repro/pkg/mod.py", tmp_path)
        assert mod.imports.aliases["f"] == "repro.pkg.sibling.f"
        init = FileContext.parse(
            tmp_path / "src/repro/pkg/__init__.py", tmp_path
        )
        assert init.imports.aliases["sibling"] == "repro.pkg.sibling"

    def test_relative_import_participates_in_rules(self, tmp_path):
        # TIME001 must see through ``from .clock import now`` — the
        # ImportMap gap this PR closes.
        write_tree(
            tmp_path,
            {
                "src/repro/edgefabric/__init__.py": "",
                "src/repro/edgefabric/clock.py": """
                    import time

                    now = time.time
                    """,
                "src/repro/edgefabric/meas.py": """
                    from time import time

                    def stamp():
                        return time()
                    """,
            },
        )
        findings = lint_paths([tmp_path / "src"], root=tmp_path)
        assert any(
            f.rule == "TIME001" and f.path.endswith("meas.py") for f in findings
        )


def rules_of(findings):
    return {f.rule for f in findings}


class TestStaleSuppressions:
    def test_stale_waiver_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/x.py": """
                    def clean():
                        return 1  # repro-lint: disable=RNG001
                    """
            },
        )
        findings = lint_paths([tmp_path / "src"], root=tmp_path)
        assert [f.rule for f in findings] == [SUPPRESS_RULE_ID]
        assert "disable=RNG001" in findings[0].message

    def test_active_waiver_does_not_fire(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/x.py": """
                    import random

                    def jitter():
                        return random.random()  # repro-lint: disable=RNG001
                    """
            },
        )
        assert lint_paths([tmp_path / "src"], root=tmp_path) == []

    def test_intentional_stale_waiver_is_suppressible(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/x.py": """
                    def clean():
                        return 1  # repro-lint: disable=RNG001,SUPPRESS001
                    """
            },
        )
        assert lint_paths([tmp_path / "src"], root=tmp_path) == []

    def test_quoted_disable_in_docstring_is_not_a_waiver(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/x.py": '''
                    """Docs quoting ``# repro-lint: disable=RNG001``."""

                    def clean():
                        return 1
                    ''',
            },
        )
        assert lint_paths([tmp_path / "src"], root=tmp_path) == []


class TestSeedTaint:
    def test_laundered_seed_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/cdn/flow.py": """
                    from dataclasses import dataclass

                    import numpy as np

                    def draw_noise():
                        return np.random.default_rng(7).normal()  # repro-lint: disable=RNG002

                    @dataclass
                    class NoisePayload:
                        def run(self):
                            return draw_noise()
                    """
            },
        )
        findings = lint_paths([tmp_path / "src"], root=tmp_path)
        det = [f for f in findings if f.rule == "DET001"]
        assert len(det) == 1
        assert "draw_noise" in det[0].message
        assert "numpy.random.default_rng" in det[0].message

    def test_seed_bearing_helper_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/cdn/flow.py": """
                    from dataclasses import dataclass

                    import numpy as np

                    def draw_noise(rng):
                        return rng.normal()

                    @dataclass
                    class NoisePayload:
                        seed: int

                        def run(self):
                            return draw_noise(np.random.default_rng(self.seed))
                    """
            },
        )
        findings = lint_paths([tmp_path / "src"], root=tmp_path)
        assert "DET001" not in rules_of(findings)


WORKER_LOCK_SNIPPET = """
    import threading
    from dataclasses import dataclass

    def guarded():
        with threading.Lock():
            return 1

    @dataclass
    class Payload:
        def run(self):
            return guarded()
    """


class TestWorkerPurity:
    def test_lock_in_worker_cone_fires(self, tmp_path):
        write_tree(tmp_path, {"src/repro/cdn/work.py": WORKER_LOCK_SNIPPET})
        findings = lint_paths([tmp_path / "src"], root=tmp_path)
        fork = [f for f in findings if f.rule == "FORK001"]
        assert len(fork) == 1
        assert "threading.Lock" in fork[0].message

    def test_global_mutation_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/cdn/work.py": """
                    from dataclasses import dataclass

                    _COUNT = 0

                    def bump():
                        global _COUNT
                        _COUNT += 1

                    @dataclass
                    class Payload:
                        def run(self):
                            bump()
                    """
            },
        )
        findings = lint_paths([tmp_path / "src"], root=tmp_path)
        assert any(
            f.rule == "FORK001" and "global" in f.message for f in findings
        )

    def test_runner_layer_is_exempt(self, tmp_path):
        write_tree(tmp_path, {"src/repro/runner/work.py": WORKER_LOCK_SNIPPET})
        findings = lint_paths([tmp_path / "src"], root=tmp_path)
        assert "FORK001" not in rules_of(findings)

    def test_unreachable_lock_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/cdn/work.py": """
                    import threading
                    from dataclasses import dataclass

                    def guarded():
                        with threading.Lock():
                            return 1

                    @dataclass
                    class Payload:
                        def run(self):
                            return 0
                    """
            },
        )
        findings = lint_paths([tmp_path / "src"], root=tmp_path)
        assert "FORK001" not in rules_of(findings)


class TestShmDiscipline:
    def lint(self, tmp_path, body):
        write_tree(
            tmp_path,
            {
                "src/repro/cdn/borrow.py": (
                    "import numpy as np\n"
                    "from repro.runner.shm import attach_shared\n\n"
                    + textwrap.dedent(body)
                )
            },
        )
        return lint_paths([tmp_path / "src"], root=tmp_path)

    def test_element_write_fires(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def clobber(spec):
                shared = attach_shared(spec)
                arr = shared["matrix"]
                arr[0] = 1.0
                return arr
            """,
        )
        assert "SHM001" in rules_of(findings)

    def test_writeable_flag_flip_fires(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def unlock(spec):
                arr = attach_shared(spec)["matrix"]
                arr.flags.writeable = True
                return arr
            """,
        )
        assert "SHM001" in rules_of(findings)

    def test_mutator_and_copyto_fire(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def smash(spec, update):
                borrowed = attach_shared(spec)
                for arr in borrowed.values():
                    arr.fill(0.0)
                np.copyto(borrowed["matrix"], update)
            """,
        )
        shm = [f for f in findings if f.rule == "SHM001"]
        assert len(shm) == 2

    def test_augassign_fires(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def shift(spec):
                arr = attach_shared(spec)["matrix"]
                arr += 1.0
            """,
        )
        assert "SHM001" in rules_of(findings)

    def test_specable_shared_param_is_tracked(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/cdn/payload.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class Payload:
                        def run(self, shared):
                            shared["matrix"][0] = 1.0
                    """
            },
        )
        findings = lint_paths([tmp_path / "src"], root=tmp_path)
        assert "SHM001" in rules_of(findings)

    def test_reads_and_private_copies_are_clean(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def consume(spec):
                arr = attach_shared(spec)["matrix"]
                private = arr.copy()
                private[0] = 1.0
                private.fill(2.0)
                return float(arr.sum()) + float(private.sum())
            """,
        )
        assert "SHM001" not in rules_of(findings)


class TestLaneSignature:
    def lint(self, tmp_path, body):
        write_tree(tmp_path, {"src/repro/cdn/lanes.py": body})
        return lint_paths([tmp_path / "src"], root=tmp_path)

    def test_head_extra_fires(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def blend_scalar(values, weights):
                return values

            def blend_fast(plan, values, weights):
                return values
            """,
        )
        par = [f for f in findings if f.rule == "PAR001"]
        assert len(par) == 1
        assert "'plan'" in par[0].message

    def test_order_flip_fires(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def blend_scalar(values, weights):
                return values

            def blend_fast(weights, values):
                return values
            """,
        )
        par = [f for f in findings if f.rule == "PAR001"]
        assert len(par) == 1
        assert "crosswise" in par[0].message

    def test_trailing_extras_are_clean(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            def blend_scalar(values, weights):
                return values

            def blend_streaming(values, weights, ingest_config, chunk_windows):
                return values
            """,
        )
        assert "PAR001" not in rules_of(findings)

    def test_sampler_lanes_stay_in_parity(self):
        """Regression: the scalar lane drifted to a ``pairs`` head param
        once; all three ``_synthesize_*`` lanes must share the plan-first
        signature prefix."""
        graph = build_graph(
            [REPO_ROOT / "src" / "repro" / "edgefabric" / "sampler.py"],
            root=REPO_ROOT,
        )
        groups = lane_groups(graph)
        key = ("repro.edgefabric.sampler", "_synthesize")
        assert key in groups
        lanes = groups[key]
        assert set(lanes) == {"scalar", "fast", "streaming"}
        for info in lanes.values():
            assert info.params[0] == "plan"
        assert list(LaneSignatureRule().check_graph(graph)) == []


class TestCliGraph:
    def test_out_is_byte_stable_and_counts_match(self, mini_repo, capsys):
        out1 = mini_repo / "graph1.json"
        out2 = mini_repo / "graph2.json"
        for out in (out1, out2):
            assert (
                main(
                    [
                        "lint",
                        "graph",
                        str(mini_repo / "src"),
                        "--root",
                        str(mini_repo),
                        "--out",
                        str(out),
                    ]
                )
                == 0
            )
        first = out1.read_bytes()
        assert first == out2.read_bytes()
        document = json.loads(first)
        assert document["version"] == 1
        assert document["counts"]["functions"] == len(document["functions"])
        assert document["counts"]["edges"] == len(document["edges"])
        graph = mini_graph(mini_repo)
        assert graph.to_json().encode("utf-8") == first

    def test_stdout_and_dot_export(self, mini_repo, capsys):
        dot = mini_repo / "graph.dot"
        assert (
            main(
                [
                    "lint",
                    "graph",
                    str(mini_repo / "src"),
                    "--root",
                    str(mini_repo),
                    "--dot",
                    str(dot),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert '"version": 1' in out
        rendered = dot.read_text(encoding="utf-8")
        assert rendered.startswith("digraph repro_calls {")
        assert (
            '"repro.mini.core.helper" -> "repro.mini.util.leaf";' in rendered
        )


class TestCliSarif:
    def test_sarif_document_shape(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "src/repro/x.py": """
                    import random

                    def jitter():
                        return random.random()
                    """
            },
        )
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "lint",
                    str(tmp_path / "src"),
                    "--root",
                    str(tmp_path),
                    "--format",
                    "sarif",
                ]
            )
        assert excinfo.value.code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"DET001", "FORK001", "SHM001", "PAR001", "RNG001"} <= rule_ids
        results = run["results"]
        assert results[0]["ruleId"] == "RNG001"
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/x.py"
        assert location["region"]["startLine"] >= 1

    def test_sarif_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/x.py": "def ok():\n    return 1\n"})
        assert (
            main(
                [
                    "lint",
                    str(tmp_path / "src"),
                    "--root",
                    str(tmp_path),
                    "--format",
                    "sarif",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"] == []


def git(repo: Path, *argv: str) -> None:
    subprocess.run(
        ["git", "-C", str(repo), *argv],
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(repo),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


class TestCliChanged:
    def test_changed_filters_to_touched_files(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "src/repro/old.py": """
                    import random

                    def committed_violation():
                        return random.random()
                    """
            },
        )
        git(tmp_path, "init", "-q")
        git(tmp_path, "add", "-A")
        git(tmp_path, "commit", "-q", "-m", "seed")
        write_tree(
            tmp_path,
            {
                "src/repro/cdn/new.py": """
                    import time

                    def fresh_violation():
                        return time.time()
                    """
            },
        )
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "lint",
                    str(tmp_path / "src"),
                    "--root",
                    str(tmp_path),
                    "--changed",
                    "--format",
                    "json",
                ]
            )
        assert excinfo.value.code == 1
        payload = json.loads(capsys.readouterr().out)
        paths = {f["path"] for f in payload["findings"]}
        assert paths == {"src/repro/cdn/new.py"}

    def test_changed_clean_when_no_touched_findings(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "src/repro/old.py": """
                    import random

                    def committed_violation():
                        return random.random()
                    """
            },
        )
        git(tmp_path, "init", "-q")
        git(tmp_path, "add", "-A")
        git(tmp_path, "commit", "-q", "-m", "seed")
        assert (
            main(
                [
                    "lint",
                    str(tmp_path / "src"),
                    "--root",
                    str(tmp_path),
                    "--changed",
                ]
            )
            == 0
        )
        assert "clean" in capsys.readouterr().out
