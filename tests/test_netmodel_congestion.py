"""Tests for the congestion model."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.netmodel import CongestionConfig, CongestionModel


@pytest.fixture
def model():
    return CongestionModel(seed=3, config=CongestionConfig(horizon_hours=240.0))


class TestConfigValidation:
    def test_positive_horizon_required(self):
        with pytest.raises(MeasurementError):
            CongestionConfig(horizon_hours=0.0)

    def test_negative_delays_rejected(self):
        with pytest.raises(MeasurementError):
            CongestionConfig(horizon_hours=24.0, diurnal_peak_ms=-1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(MeasurementError):
            CongestionConfig(horizon_hours=24.0, event_rate_per_day=-0.1)


class TestEvents:
    def test_deterministic_per_key(self, model):
        assert model.events("link:a") == model.events("link:a")

    def test_different_keys_differ(self, model):
        # With a 10-day horizon the event lists almost surely differ.
        keys = [f"link:{i}" for i in range(20)]
        lists = [tuple(model.events(k)) for k in keys]
        assert len(set(lists)) > 1

    def test_same_seed_same_events_across_instances(self):
        cfg = CongestionConfig(horizon_hours=240.0)
        a = CongestionModel(5, cfg).events("x")
        b = CongestionModel(5, cfg).events("x")
        assert a == b

    def test_different_seed_differs(self):
        cfg = CongestionConfig(horizon_hours=2400.0, event_rate_per_day=2.0)
        a = CongestionModel(1, cfg).events("x")
        b = CongestionModel(2, cfg).events("x")
        assert a != b

    def test_events_within_horizon(self, model):
        for start, duration, magnitude in model.events("link:z"):
            assert 0.0 <= start <= 240.0
            assert duration > 0
            assert magnitude > 0

    def test_event_delay_matches_events(self, model):
        events = model.events("link:y")
        if not events:
            pytest.skip("no events drawn for this key")
        start, duration, magnitude = events[0]
        inside = model.event_delay("link:y", np.array([start + duration / 2]))
        outside = model.event_delay("link:y", np.array([start - 1e-6]))
        assert inside[0] >= magnitude - 1e-9
        assert outside[0] < inside[0]

    def test_zero_rate_no_events(self):
        cfg = CongestionConfig(horizon_hours=240.0, event_rate_per_day=0.0)
        model = CongestionModel(0, cfg)
        assert model.events("anything") == []
        times = np.linspace(0, 240, 100)
        assert np.all(model.event_delay("anything", times) == 0.0)


class TestDiurnal:
    def test_peaks_at_local_evening(self, model):
        times = np.linspace(0.0, 24.0, 24 * 60, endpoint=False)
        delay = model.diurnal_delay(times, lon=0.0)
        peak_time = times[np.argmax(delay)]
        assert peak_time == pytest.approx(20.0, abs=0.1)

    def test_longitude_shifts_peak(self, model):
        times = np.linspace(0.0, 24.0, 24 * 60, endpoint=False)
        # 90 degrees east = 6 hours ahead: local 20:00 is 14:00 UTC.
        delay = model.diurnal_delay(times, lon=90.0)
        peak_time = times[np.argmax(delay)]
        assert peak_time == pytest.approx(14.0, abs=0.1)

    def test_bounded_by_peak(self, model):
        times = np.linspace(0.0, 48.0, 1000)
        delay = model.diurnal_delay(times, lon=30.0)
        assert delay.max() <= model.config.diurnal_peak_ms + 1e-9
        assert delay.min() >= 0.0

    def test_explicit_peak_override(self, model):
        times = np.array([20.0])
        assert model.diurnal_delay(times, lon=0.0, peak_ms=7.0)[0] == pytest.approx(7.0)


class TestBaselineShifts:
    def test_deterministic(self, model):
        assert model.baseline_shifts("p") == model.baseline_shifts("p")

    def test_delay_nonnegative(self, model):
        times = np.linspace(0, 240, 500)
        assert (model.baseline_shift_delay("p", times) >= 0).all()


class TestComposites:
    def test_shared_delay_is_sum(self, model):
        times = np.linspace(0, 48, 200)
        shared = model.shared_delay("dest:p1", lon=10.0, times_h=times)
        expected = model.diurnal_delay(times, 10.0) + model.event_delay(
            "dest:p1", times
        )
        assert shared == pytest.approx(expected)

    def test_link_delay_no_diurnal(self, model):
        times = np.linspace(0, 48, 200)
        assert model.link_delay("l1", times) == pytest.approx(
            model.event_delay("l1", times)
        )


class TestBatchKernels:
    """The vectorized lanes agree with the scalar methods row by row."""

    def test_event_delay_batch_matches_scalar(self, model):
        keys = [f"link:{i}" for i in range(12)]
        times = np.linspace(0.0, 240.0, 973)
        batch = model.event_delay_batch(keys, times)
        assert batch.shape == (len(keys), times.size)
        for row, key in enumerate(keys):
            np.testing.assert_allclose(
                batch[row], model.event_delay(key, times), rtol=0, atol=1e-9
            )

    def test_event_delay_batch_handles_edges(self, model):
        # Events straddling the grid boundaries must not spill: an event
        # ending past the last sample stays active to the end, and one
        # starting before the first sample is active from the start.
        events = model.events("link:edge")
        times = np.linspace(50.0, 60.0, 101)
        batch = model.event_delay_batch(["link:edge"], times)
        np.testing.assert_allclose(
            batch[0], model.event_delay("link:edge", times), atol=1e-9
        )
        assert events == model.events("link:edge")  # cache untouched

    def test_event_delay_batch_empty(self, model):
        assert model.event_delay_batch([], np.linspace(0, 1, 5)).shape == (0, 5)
        assert model.event_delay_batch(["k"], np.array([])).shape == (1, 0)

    def test_event_delay_batch_rejects_unsorted(self, model):
        with pytest.raises(MeasurementError):
            model.event_delay_batch(["k"], np.array([2.0, 1.0, 3.0]))

    def test_diurnal_batch_bit_identical(self, model):
        times = np.linspace(0.0, 48.0, 500)
        lons = np.array([-120.0, -30.0, 0.0, 77.5, 151.2])
        batch = model.diurnal_delay_batch(times, lons)
        for row, lon in enumerate(lons):
            assert (batch[row] == model.diurnal_delay(times, lon)).all()

    def test_shared_delay_batch_matches_scalar(self, model):
        times = np.linspace(0.0, 240.0, 401)
        keys = [f"dest:p{i}" for i in range(6)]
        lons = np.linspace(-150.0, 150.0, 6)
        batch = model.shared_delay_batch(keys, lons, times)
        for row, (key, lon) in enumerate(zip(keys, lons)):
            np.testing.assert_allclose(
                batch[row], model.shared_delay(key, lon, times), atol=1e-9
            )

    def test_shared_delay_batch_alignment_checked(self, model):
        with pytest.raises(MeasurementError):
            model.shared_delay_batch(["a", "b"], np.array([1.0]), np.arange(3.0))

    def test_link_delay_batch_matches_scalar(self, model):
        times = np.linspace(0.0, 240.0, 300)
        keys = ["l1", "l2", "l3"]
        batch = model.link_delay_batch(keys, times)
        for row, key in enumerate(keys):
            np.testing.assert_allclose(
                batch[row], model.link_delay(key, times), atol=1e-9
            )
