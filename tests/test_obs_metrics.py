"""Tests for sketch-backed histograms and live campaign progress.

The acceptance bar from the profiling-plane work: histogram quantiles
agree with numpy's exact quantiles within the sketch plane's
``RANK_TOLERANCE`` on arbitrary finite inputs (property-based), and the
progress tracker survives broken status streams without taking the
campaign down.
"""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.errors import ObsError
from repro.obs import (
    Histogram,
    ProgressTracker,
    fold_heartbeats,
    merge_hist_events,
    quantile_table,
)
from repro.stream import RANK_TOLERANCE

#: Finite measurement-like values (latencies in seconds, wide but bounded).
samples = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, width=32),
    min_size=1,
    max_size=400,
)


def rank_error(values: np.ndarray, estimate: float, q: float) -> float:
    """Rank-space distance of ``estimate`` from the exact ``q``-quantile.

    With ties an estimate occupies a rank *interval*
    ``[count(< est), count(<= est)] / n``; the error is the distance
    from ``q`` to that interval, so exact answers score 0 even on
    tie-heavy inputs.
    """
    lo = np.count_nonzero(values < estimate) / values.size
    hi = np.count_nonzero(values <= estimate) / values.size
    return max(0.0, lo - q, q - hi)


class TestHistogramAccuracy:
    @given(samples)
    @settings(max_examples=200, deadline=None)
    def test_quantiles_within_rank_tolerance_of_numpy(self, values):
        arr = np.asarray(values)
        hist = Histogram("latency_s")
        for value in values:
            hist.observe(value)
        for q in (0.5, 0.95, 0.99):
            estimate = hist.quantile(q)
            exact = float(np.quantile(arr, q))
            # Value-space agreement is not guaranteed (sketches compress),
            # but rank-space agreement is the documented contract.
            assert rank_error(arr, estimate, q) <= RANK_TOLERANCE, (
                f"q={q}: sketch {estimate} vs numpy {exact}"
            )

    @given(samples, samples)
    @settings(max_examples=100, deadline=None)
    def test_merged_shards_match_concatenation(self, left, right):
        # The property that makes per-worker flushes sound.
        shard_a, shard_b = Histogram("x"), Histogram("x")
        for value in left:
            shard_a.observe(value)
        for value in right:
            shard_b.observe(value)
        shard_a.merge(shard_b)
        arr = np.asarray(left + right)
        assert shard_a.count == arr.size
        assert shard_a.sum == pytest.approx(float(arr.sum()), rel=1e-9, abs=1e-6)
        assert rank_error(arr, shard_a.quantile(0.5), 0.5) <= RANK_TOLERANCE


class TestHistogramApi:
    def test_exact_stats_and_summary_keys(self):
        hist = Histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 1.0
        assert hist.max == 4.0
        assert hist.mean == pytest.approx(2.5)
        summary = hist.summary()
        assert set(summary) == {"count", "min", "max", "mean", "p50", "p95", "p99"}
        assert summary["p50"] == pytest.approx(2.5, abs=0.5)

    def test_empty_histogram(self):
        hist = Histogram("h")
        assert hist.min is None and hist.max is None and hist.mean is None
        with pytest.raises(ObsError, match="empty"):
            hist.quantile(0.5)
        summary = hist.summary()
        assert summary["count"] == 0 and summary["p99"] is None

    def test_bad_name_rejected(self):
        with pytest.raises(ObsError):
            Histogram("")

    def test_merge_name_mismatch_rejected(self):
        with pytest.raises(ObsError, match="cannot merge"):
            Histogram("a").merge(Histogram("b"))

    def test_event_round_trip(self):
        hist = Histogram("runner.job.latency_s")
        for value in (0.1, 0.2, 0.7):
            hist.observe(value)
        event = hist.to_event("run-1")
        assert event["kind"] == "hist"
        assert event["name"] == "runner.job.latency_s"
        back = Histogram.from_event(event)
        assert back.count == 3
        assert back.sum == pytest.approx(1.0)
        assert back.quantile(0.5) == pytest.approx(hist.quantile(0.5))

    def test_from_event_rejects_malformed_sketch(self):
        event = Histogram("h").to_event("run-1")
        event["sketch"] = {"kind": "nonsense"}
        with pytest.raises(ObsError, match="malformed sketch"):
            Histogram.from_event(event)


class TestStreamFolding:
    def _events(self):
        a1, a2, b = Histogram("a"), Histogram("a"), Histogram("b")
        for value in (1.0, 2.0):
            a1.observe(value)
        for value in (3.0, 4.0):
            a2.observe(value)
        b.observe(9.0)
        return [
            a1.to_event("r"),
            {"kind": "span_start", "name": "noise"},  # skipped
            a2.to_event("r"),
            b.to_event("r"),
        ]

    def test_merge_hist_events_folds_shards_per_name(self):
        merged = merge_hist_events(self._events())
        assert set(merged) == {"a", "b"}
        assert merged["a"].count == 4
        assert merged["a"].sum == pytest.approx(10.0)
        assert merged["b"].count == 1

    def test_quantile_table_rows(self):
        rows = quantile_table(merge_hist_events(self._events()))
        assert [row["name"] for row in rows] == ["a", "b"]
        assert rows[0]["count"] == 4
        assert {"p50", "p95", "p99"} <= set(rows[0])


class _BrokenStream(io.StringIO):
    def write(self, s):  # noqa: D102 - simulates a closed pipe
        raise OSError("broken pipe")


class TestProgressTracker:
    @pytest.fixture(autouse=True)
    def _obs_off(self):
        obs.disable()
        yield
        obs.disable()

    def test_counters_and_snapshot(self):
        tracker = ProgressTracker(total=4)
        tracker.job_done("ran")
        tracker.job_done("hit")
        tracker.job_done("failed")
        tracker.retry()
        snap = tracker.snapshot()
        assert snap["done"] == 3
        assert snap["total"] == 4
        assert snap["hits"] == 1
        assert snap["failed"] == 1
        assert snap["retried"] == 1
        assert snap["rate"] >= 0.0
        assert snap["elapsed_s"] > 0.0

    def test_rate_and_eta_appear_after_jobs(self):
        tracker = ProgressTracker(total=100)
        for _ in range(3):
            tracker.job_done()
        snap = tracker.snapshot()
        assert snap["rate"] > 0.0
        assert snap["eta_s"] > 0.0

    def test_validation(self):
        with pytest.raises(ObsError):
            ProgressTracker(total=-1)
        with pytest.raises(ObsError):
            ProgressTracker(ewma_alpha=0.0)
        with pytest.raises(ObsError):
            ProgressTracker().job_done("exploded")
        with pytest.raises(ObsError):
            ProgressTracker().set_total(-2)

    def test_format_line_variants(self):
        line = ProgressTracker.format_line(
            {
                "done": 3,
                "total": 10,
                "failed": 1,
                "retried": 2,
                "hits": 1,
                "rate": 2.0,
                "eta_s": 3.5,
                "elapsed_s": 1.5,
            }
        )
        assert "campaign 3/10 (30%)" in line
        assert "1 hit(s)" in line and "1 failed" in line and "2 retried" in line
        assert "2.00 job/s" in line and "eta 4s" in line

        bare = ProgressTracker.format_line(
            {
                "done": 2,
                "total": 0,
                "failed": 0,
                "retried": 0,
                "hits": 0,
                "rate": 0.0,
                "eta_s": 0.0,
                "elapsed_s": 1.0,
            }
        )
        assert bare == "campaign 2 job(s)"

    def test_non_tty_stream_gets_full_lines(self):
        stream = io.StringIO()
        tracker = ProgressTracker(total=2, stream=stream, min_interval_s=0.0)
        tracker.job_done()
        tracker.job_done()
        tracker.finish()
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert lines, "non-TTY stream saw no progress lines"
        assert all("\r" not in line for line in lines)
        assert "campaign 2/2 (100%)" in lines[-1]

    def test_non_tty_renders_throttled(self):
        stream = io.StringIO()
        tracker = ProgressTracker(total=50, stream=stream, min_interval_s=3600.0)
        for _ in range(10):
            tracker.job_done()
        # Every render inside the interval is suppressed after the first.
        assert len(stream.getvalue().splitlines()) <= 1

    def test_broken_stream_goes_silent_not_fatal(self):
        tracker = ProgressTracker(total=2, stream=_BrokenStream(), min_interval_s=0.0)
        tracker.job_done()
        tracker.job_done()
        tracker.finish()  # no raise: progress goes silent instead
        assert tracker.snapshot()["done"] == 2

    def test_heartbeats_mirror_into_trace(self):
        with obs.capture() as captured:
            tracker = ProgressTracker(total=2)
            tracker.job_done("ran")
            tracker.job_done("hit")
        beats = [e for e in captured.events if e.get("kind") == "heartbeat"]
        assert len(beats) == 2
        assert beats[-1]["name"] == "runner.progress"
        assert beats[-1]["done"] == 2
        assert beats[-1]["hits"] == 1


class TestFoldHeartbeats:
    def test_returns_last_view_plus_count(self):
        with obs.capture() as captured:
            tracker = ProgressTracker(total=3)
            for _ in range(3):
                tracker.job_done()
        folded = fold_heartbeats(captured.events)
        assert folded["done"] == 3
        assert folded["total"] == 3
        assert folded["n_heartbeats"] == 3

    def test_empty_stream(self):
        assert fold_heartbeats([]) == {}
        assert fold_heartbeats([{"kind": "span_start", "name": "x"}]) == {}
