"""Tests for multi-seed robustness sweeps."""

import dataclasses

import pytest

from repro.errors import AnalysisError
from repro.core import PopRoutingStudy, sweep_seeds
from repro.core.study import StudyResult
from repro.core.sweep import aggregate_results


@dataclasses.dataclass
class StubStudy:
    """Fast stand-in whose summary keys can vary by seed.

    Module-level so :func:`sweep_seeds` can route it through the
    campaign runner (specs resolve the class by import path).
    """

    seed: int = 0
    with_extra_on_even_seeds: bool = False

    def run(self) -> StudyResult:
        summary = {"value": float(self.seed)}
        if self.with_extra_on_even_seeds and self.seed % 2 == 0:
            summary["sometimes"] = 1.0
        return StudyResult(name="stub", summary=summary)


@pytest.fixture(scope="module")
def sweep(small_config):
    import dataclasses

    def factory(seed):
        return PopRoutingStudy(
            seed=seed,
            n_prefixes=40,
            days=0.5,
            topology=dataclasses.replace(small_config, seed=seed),
        )

    return sweep_seeds(factory, seeds=(1, 2, 3))


class TestSweep:
    def test_aggregates_shape(self, sweep):
        assert sweep.study_name == "pop-routing"
        assert sweep.seeds == (1, 2, 3)
        assert len(sweep.per_seed) == 3
        for stat in sweep.stats.values():
            assert stat.minimum <= stat.mean <= stat.maximum
            assert stat.std >= 0.0

    def test_headline_stat_robust_across_seeds(self, sweep):
        """The core claim holds at every seed, not just on average.

        Bounds here are loose: 40 prefixes over half a day is tiny, so
        one heavy prefix can dominate a seed's traffic weighting.  The
        tight full-scale bounds live in the benchmarks and in
        `validate_reproduction(scale="full")`.
        """
        stat = sweep.stats["frac_alternate_better_5ms"]
        assert stat.maximum < 0.35
        assert stat.mean < 0.20
        gain = sweep.stats["omniscient_gain_ms"]
        assert gain.maximum < 8.0
        assert gain.minimum >= 0.0

    def test_render(self, sweep):
        text = sweep.render()
        assert "pop-routing" in text
        assert "frac_alternate_better_5ms" in text
        assert "mean" in text

    def test_needs_two_seeds(self, small_config):
        with pytest.raises(AnalysisError):
            sweep_seeds(lambda s: PopRoutingStudy(seed=s), seeds=(1,))


class TestDroppedKeys:
    def test_partial_keys_recorded_not_discarded(self):
        result = sweep_seeds(
            lambda s: StubStudy(seed=s, with_extra_on_even_seeds=True),
            seeds=(1, 2, 3),
        )
        assert result.dropped_keys == ("sometimes",)
        assert "sometimes" not in result.stats
        assert "value" in result.stats
        assert "absent in some runs (not aggregated): sometimes" in result.render()

    def test_no_dropped_keys_by_default(self):
        result = sweep_seeds(lambda s: StubStudy(seed=s), seeds=(1, 2))
        assert result.dropped_keys == ()
        assert "absent in some runs" not in result.render()

    def test_aggregate_results_validates(self):
        results = [StubStudy(seed=s).run() for s in (1, 2)]
        with pytest.raises(AnalysisError):
            aggregate_results(results, seeds=(1,))
        with pytest.raises(AnalysisError):
            aggregate_results([], seeds=())
        mixed = results + [StudyResult(name="other", summary={"value": 0.0})]
        with pytest.raises(AnalysisError):
            aggregate_results(mixed, seeds=(1, 2, 3))

    def test_no_common_key_is_an_error_not_a_silent_drop(self):
        # When every key is missing from at least one run, nothing would
        # be aggregated and the whole sweep would vanish into
        # dropped_keys.  That must raise, not return an empty table.
        disjoint = [
            StudyResult(name="s", summary={"only_in_run_a": 1.0}),
            StudyResult(name="s", summary={"only_in_run_b": 2.0}),
        ]
        with pytest.raises(AnalysisError, match="present in every run"):
            aggregate_results(disjoint, seeds=(1, 2))

    def test_empty_summaries_are_an_error(self):
        empty = [
            StudyResult(name="s", summary={}),
            StudyResult(name="s", summary={}),
        ]
        with pytest.raises(AnalysisError):
            aggregate_results(empty, seeds=(1, 2))


class TestRunnerRouting:
    def test_parallel_sweep_matches_serial(self):
        serial = sweep_seeds(lambda s: StubStudy(seed=s), seeds=(1, 2, 3))
        parallel = sweep_seeds(
            lambda s: StubStudy(seed=s), seeds=(1, 2, 3), jobs=2
        )
        assert parallel.per_seed == serial.per_seed
        assert parallel.stats == serial.stats

    def test_cached_sweep_matches_fresh(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = sweep_seeds(
            lambda s: StubStudy(seed=s), seeds=(1, 2), cache_dir=cache
        )
        second = sweep_seeds(
            lambda s: StubStudy(seed=s), seeds=(1, 2), cache_dir=cache
        )
        assert second.per_seed == first.per_seed
        assert second.stats == first.stats
