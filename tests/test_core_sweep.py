"""Tests for multi-seed robustness sweeps."""

import pytest

from repro.errors import AnalysisError
from repro.core import PopRoutingStudy, sweep_seeds


@pytest.fixture(scope="module")
def sweep(small_config):
    import dataclasses

    def factory(seed):
        return PopRoutingStudy(
            seed=seed,
            n_prefixes=40,
            days=0.5,
            topology=dataclasses.replace(small_config, seed=seed),
        )

    return sweep_seeds(factory, seeds=(1, 2, 3))


class TestSweep:
    def test_aggregates_shape(self, sweep):
        assert sweep.study_name == "pop-routing"
        assert sweep.seeds == (1, 2, 3)
        assert len(sweep.per_seed) == 3
        for stat in sweep.stats.values():
            assert stat.minimum <= stat.mean <= stat.maximum
            assert stat.std >= 0.0

    def test_headline_stat_robust_across_seeds(self, sweep):
        """The core claim holds at every seed, not just on average.

        Bounds here are loose: 40 prefixes over half a day is tiny, so
        one heavy prefix can dominate a seed's traffic weighting.  The
        tight full-scale bounds live in the benchmarks and in
        `validate_reproduction(scale="full")`.
        """
        stat = sweep.stats["frac_alternate_better_5ms"]
        assert stat.maximum < 0.35
        assert stat.mean < 0.20
        gain = sweep.stats["omniscient_gain_ms"]
        assert gain.maximum < 8.0
        assert gain.minimum >= 0.0

    def test_render(self, sweep):
        text = sweep.render()
        assert "pop-routing" in text
        assert "frac_alternate_better_5ms" in text
        assert "mean" in text

    def test_needs_two_seeds(self, small_config):
        with pytest.raises(AnalysisError):
            sweep_seeds(lambda s: PopRoutingStudy(seed=s), seeds=(1,))
