"""Tests for repro.obs.report aggregation and repro.obs.manifest provenance."""

import json

import pytest

from repro import obs
from repro.errors import ObsError


def _stream():
    """A hand-built two-process stream exercising every event kind."""
    run = "runA"
    events = []
    # Parent process: one phase run twice, a counter, a gauge.
    for span_id, dur in [(1, 0.010), (2, 0.030)]:
        events.append(
            obs.make_event("span_start", "phase.x", run, 0.0, span=span_id)
        )
        events.append(
            obs.make_event(
                "span_end", "phase.x", run, dur, span=span_id, dur_s=dur
            )
        )
    events.append(obs.make_event("counter", "cache.hits", run, 0.1, value=2))
    events.append(obs.make_event("counter", "cache.hits", run, 0.2, value=3))
    events.append(obs.make_event("gauge", "n_links", run, 0.3, value=10.0))
    events.append(obs.make_event("gauge", "n_links", run, 0.4, value=12.0))
    # A second process (simulated): distinct pid, one replayed event.
    worker = obs.make_event("span_start", "phase.y", run, 0.0, span=1)
    worker["pid"] = events[0]["pid"] + 1
    worker_end = obs.make_event(
        "span_end", "phase.y", run, 0.5, span=1, dur_s=0.5
    )
    worker_end["pid"] = worker["pid"]
    worker_end["replay"] = True
    events += [worker, worker_end]
    # An unclosed span at the very end.
    events.append(obs.make_event("span_start", "phase.z", run, 0.9, span=3))
    return events


class TestSummarize:
    def test_summary_statistics(self):
        summary = obs.summarize_events(_stream())
        assert summary.n_events == 11
        assert summary.run_ids == ("runA",)
        assert len(summary.pids) == 2
        assert summary.n_replayed == 1
        assert summary.n_unclosed == 1
        assert summary.counters == {"cache.hits": 5.0}
        assert summary.gauges == {"n_links": 12.0}  # last write wins

    def test_span_stats_distribution(self):
        summary = obs.summarize_events(_stream())
        by_name = {s.name: s for s in summary.spans}
        x = by_name["phase.x"]
        assert x.count == 2
        assert x.total_s == pytest.approx(0.040)
        assert x.p50_ms == pytest.approx(20.0)
        assert x.max_ms == pytest.approx(30.0)
        # Largest total first.
        assert summary.spans[0].name == "phase.y"

    def test_error_spans_counted(self):
        run = "runB"
        events = [
            obs.make_event("span_start", "p", run, 0.0, span=1),
            obs.make_event(
                "span_end", "p", run, 0.1, span=1, dur_s=0.1, error="ValueError"
            ),
        ]
        summary = obs.summarize_events(events)
        assert summary.spans[0].errors == 1

    def test_render_contains_headline_and_tables(self):
        text = obs.summarize_events(_stream()).render()
        assert "11 events" in text
        assert "2 process(es)" in text
        assert "1 replayed" in text
        assert "1 unclosed span(s)" in text
        assert "phase.x" in text and "phase.y" in text
        assert "cache.hits" in text
        assert "n_links" in text

    def test_empty_stream(self):
        summary = obs.summarize_events([])
        assert summary.n_events == 0
        assert summary.spans == ()
        assert "0 events" in summary.render()


class TestLoadEvents:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = _stream()
        obs.write_jsonl(path, events)
        assert obs.load_events(path) == events
        assert obs.summarize_file(path).n_events == len(events)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        event = obs.make_event("counter", "c", "r", 0.0, value=1)
        path.write_text(f"{obs.encode_line(event)}\n\n{obs.encode_line(event)}\n")
        assert len(obs.load_events(path)) == 2

    def test_corrupt_line_reports_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        event = obs.make_event("counter", "c", "r", 0.0, value=1)
        path.write_text(f"{obs.encode_line(event)}\nnot json\n")
        with pytest.raises(ObsError, match=rf"{path.name}:2"):
            obs.load_events(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObsError, match="cannot read"):
            obs.load_events(tmp_path / "absent.jsonl")


class TestManifest:
    def test_collect_and_roundtrip(self, tmp_path):
        manifest = obs.collect_manifest(
            "run42",
            config={"study": "pop", "scale": 50},
            seeds=[1, 2],
            argv=["repro-bgp", "report"],
            wall_s=1.25,
            extra={"n_events": 7},
        )
        assert manifest.run_id == "run42"
        assert manifest.seeds == (1, 2)
        assert manifest.config_hash == obs.config_digest(
            {"study": "pop", "scale": 50}
        )
        path = obs.write_manifest(manifest, tmp_path / "m.json")
        loaded = obs.read_manifest(path)
        assert loaded == manifest

    def test_config_digest_order_independent(self):
        assert obs.config_digest({"a": 1, "b": 2}) == obs.config_digest(
            {"b": 2, "a": 1}
        )
        assert obs.config_digest({"a": 1}) != obs.config_digest({"a": 2})

    def test_read_manifest_rejects_garbage(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("not json")
        with pytest.raises(ObsError, match="cannot read run manifest"):
            obs.read_manifest(path)
        path.write_text(json.dumps({"schema": 1, "kind": "other"}))
        with pytest.raises(ObsError):
            obs.read_manifest(path)

    def test_git_revision_in_repo(self):
        rev = obs.git_revision()
        assert rev is None or (len(rev) == 40 and set(rev) <= set("0123456789abcdef"))

    def test_git_revision_outside_repo(self, tmp_path):
        assert obs.git_revision(cwd=tmp_path) is None
