"""Tests for paper-style report rendering."""

from repro.core import StudyResult, Verdict, render_report
from repro.core.hypotheses import HypothesisVerdict


def make_result(name="demo"):
    return StudyResult(
        name=name,
        summary={"alpha": 1.2345, "beta": 0.5},
        figures={},
        hypotheses=[
            HypothesisVerdict(
                hypothesis="test hypothesis",
                verdict=Verdict.SUPPORTED,
                evidence={"metric": 0.9},
                explanation="because the metric is high.",
            )
        ],
    )


class TestRenderReport:
    def test_summary_rows_sorted(self):
        report = render_report([make_result()])
        alpha_pos = report.index("alpha")
        beta_pos = report.index("beta")
        assert alpha_pos < beta_pos
        assert "1.234" in report or "1.235" in report

    def test_hypotheses_with_evidence(self):
        report = render_report([make_result()])
        assert "[SUPPORTED" in report
        assert "test hypothesis" in report
        assert "because the metric is high." in report
        assert "metric" in report

    def test_multiple_studies(self):
        report = render_report([make_result("a"), make_result("b")])
        assert "## Study: a" in report
        assert "## Study: b" in report

    def test_header_always_present(self):
        report = render_report([])
        assert report.startswith("Beating BGP is Harder than we Thought")
