"""Tests for the reproduction self-check."""

import pytest

from repro.errors import AnalysisError
from repro.core import ClaimCheck, ValidationReport, validate_reproduction


class TestReportRendering:
    def make_report(self, passed_flags):
        checks = tuple(
            ClaimCheck(
                claim_id=f"c{i}",
                description=f"claim {i}",
                expected="x",
                measured="y",
                passed=flag,
            )
            for i, flag in enumerate(passed_flags)
        )
        return ValidationReport(checks=checks)

    def test_all_pass(self):
        report = self.make_report([True, True])
        assert report.passed
        assert report.n_failed == 0
        assert "all claims hold" in report.render()

    def test_failures_counted(self):
        report = self.make_report([True, False, False])
        assert not report.passed
        assert report.n_failed == 2
        assert "2 claim(s) FAILED" in report.render()
        assert "[FAIL]" in report.render()


class TestValidateReproduction:
    def test_invalid_scale(self):
        with pytest.raises(AnalysisError):
            validate_reproduction(scale="huge")

    @pytest.mark.slow
    def test_small_scale_passes(self):
        messages = []
        report = validate_reproduction(
            seed=0, scale="small", progress=messages.append
        )
        assert report.passed, report.render()
        claim_ids = {c.claim_id for c in report.checks}
        assert {"fig1", "fig2", "fig3", "fig4", "s332-india", "s4-goodput"} <= claim_ids
        assert any("Setting A" in m for m in messages)
