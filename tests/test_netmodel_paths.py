"""Tests for geographic forwarding traces."""

import pytest

from repro.errors import RoutingError
from repro.geo import city_named, great_circle_km, propagation_one_way_ms
from repro.bgp import propagate
from repro.netmodel import AS_HOP_PENALTY_MS, trace
from repro.netmodel.paths import ForwardingPath, Segment

from conftest import E1, E2, PROVIDER, T1A, TR1, TR2

NY = city_named("New York")
CHI = city_named("Chicago")
LON = city_named("London")
FRA = city_named("Frankfurt")


class TestTraceBasics:
    def test_direct_peer_trace(self, toy_graph):
        """Provider at NY -> E1 (PNI at NY) -> client in Chicago."""
        table = propagate(toy_graph, E1)
        path = trace(
            toy_graph, table, PROVIDER, NY, dest_city=CHI, via_neighbor=E1
        )
        assert path.as_path == (PROVIDER, E1)
        assert path.ingress_city == NY
        # One intra-E1 segment NY -> Chicago at the eyeball's inflation.
        assert len(path.segments) == 1
        seg = path.segments[0]
        assert seg.asn == E1
        km = great_circle_km(NY.location, CHI.location)
        assert seg.one_way_ms == pytest.approx(
            propagation_one_way_ms(km, toy_graph.get(E1).backbone_inflation)
        )
        assert path.one_way_ms == pytest.approx(
            seg.one_way_ms + AS_HOP_PENALTY_MS
        )

    def test_follows_best_route_without_override(self, toy_graph):
        table = propagate(toy_graph, E1)
        path = trace(toy_graph, table, PROVIDER, NY, dest_city=CHI)
        # The provider's best route to E1 is the PNI.
        assert path.as_path == (PROVIDER, E1)

    def test_via_neighbor_override(self, toy_graph):
        table = propagate(toy_graph, E1)
        path = trace(
            toy_graph, table, PROVIDER, NY, dest_city=CHI, via_neighbor=T1A
        )
        assert path.as_path == (PROVIDER, T1A, TR1, E1)

    def test_via_neighbor_must_export(self, toy_graph):
        # For destination E2, E1 exports nothing to the provider.
        table = propagate(toy_graph, E2)
        with pytest.raises(RoutingError):
            trace(
                toy_graph, table, PROVIDER, NY, dest_city=FRA, via_neighbor=E1
            )

    def test_first_exit_city_pins_handoff(self, toy_graph):
        table = propagate(toy_graph, E2)
        # The provider's peering with TR2 is at London only; pinning the
        # exit to London is allowed, pinning to New York is not.
        path = trace(
            toy_graph,
            table,
            PROVIDER,
            LON,
            dest_city=FRA,
            via_neighbor=TR2,
            first_exit_city=LON,
        )
        assert path.as_path == (PROVIDER, TR2, E2)
        with pytest.raises(RoutingError):
            trace(
                toy_graph,
                table,
                PROVIDER,
                NY,
                dest_city=FRA,
                via_neighbor=TR2,
                first_exit_city=NY,
            )

    def test_unreachable_source(self, toy_graph):
        toy_graph.remove_link(E2, TR2)
        table = propagate(toy_graph, E1)
        with pytest.raises(RoutingError):
            trace(toy_graph, table, E2, FRA)

    def test_rtt_is_twice_one_way(self, toy_graph):
        table = propagate(toy_graph, E1)
        path = trace(toy_graph, table, PROVIDER, NY, dest_city=CHI)
        assert path.rtt_ms == pytest.approx(2.0 * path.one_way_ms)

    def test_hop_penalty_scales_with_boundaries(self, toy_graph):
        table = propagate(toy_graph, E1)
        direct = trace(
            toy_graph, table, PROVIDER, NY, dest_city=CHI, via_neighbor=E1
        )
        transit = trace(
            toy_graph, table, PROVIDER, NY, dest_city=CHI, via_neighbor=T1A
        )
        # 1 vs 3 AS boundaries.
        assert transit.as_path == (PROVIDER, T1A, TR1, E1)
        penalties_direct = 1 * AS_HOP_PENALTY_MS
        penalties_transit = 3 * AS_HOP_PENALTY_MS
        assert direct.one_way_ms >= penalties_direct
        assert transit.one_way_ms >= penalties_transit


class TestAnycastSemantics:
    def test_no_dest_city_ends_at_ingress(self, toy_graph):
        table = propagate(toy_graph, PROVIDER)
        path = trace(toy_graph, table, E1, CHI)
        # E1 -> PNI at New York; service is at the ingress.
        assert path.as_path == (E1, PROVIDER)
        assert path.ingress_city == NY

    def test_origin_city_scoping_respected(self, toy_graph):
        # Announce only at London: E1 can't use the NY PNI.
        table = propagate(
            toy_graph, PROVIDER, origin_cities=frozenset({LON})
        )
        path = trace(toy_graph, table, E1, CHI)
        assert path.ingress_city == LON


class TestWanTerminalSegment:
    def test_wan_carries_to_destination(self, small_internet):
        """Premium-style path: ingress PoP, then the WAN to the DC."""
        table = propagate(small_internet.graph, small_internet.provider_asn)
        eyeball = small_internet.graph.get(small_internet.eyeball_asns[0])
        dc_city = small_internet.dc_pop.city
        with_wan = trace(
            small_internet.graph,
            table,
            eyeball.asn,
            eyeball.home_city,
            dest_city=dc_city,
            wan=small_internet.wan,
        )
        without_dest = trace(
            small_internet.graph, table, eyeball.asn, eyeball.home_city
        )
        assert with_wan.one_way_ms >= without_dest.one_way_ms
        assert with_wan.ingress_city == without_dest.ingress_city


class TestCrossesLongitude:
    def test_simple_span(self):
        seg = Segment(1, city_named("London"), city_named("New York"), 5570.0, 27.8)
        path = ForwardingPath((1,), (seg,), city_named("New York"), 27.8)
        assert path.crosses_longitude(-30.0)
        assert not path.crosses_longitude(100.0)

    def test_antimeridian_wrap(self):
        seg = Segment(1, city_named("Tokyo"), city_named("Seattle"), 7700.0, 38.0)
        path = ForwardingPath((1,), (seg,), city_named("Seattle"), 38.0)
        # Tokyo (139.7E) -> Seattle (122.3W) crosses the antimeridian.
        assert path.crosses_longitude(180.0)
        assert not path.crosses_longitude(0.0)

    def test_total_km(self):
        seg = Segment(1, city_named("London"), city_named("Paris"), 344.0, 1.9)
        path = ForwardingPath((1,), (seg,), city_named("Paris"), 1.9)
        assert path.total_km == pytest.approx(344.0)
