"""Tests for weighted distribution statistics."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis import (
    bootstrap_ci,
    weighted_ccdf,
    weighted_cdf,
    weighted_fraction_below,
    weighted_quantile,
)


class TestWeightedCdf:
    def test_unweighted_simple(self):
        cdf = weighted_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_at_most(2.0) == pytest.approx(0.5)
        assert cdf.fraction_at_most(0.5) == 0.0
        assert cdf.fraction_at_most(4.0) == pytest.approx(1.0)

    def test_weights_shift_mass(self):
        cdf = weighted_cdf([1.0, 2.0], weights=[3.0, 1.0])
        assert cdf.fraction_at_most(1.0) == pytest.approx(0.75)

    def test_duplicate_values_merge(self):
        cdf = weighted_cdf([2.0, 2.0, 5.0], weights=[1.0, 1.0, 2.0])
        assert list(cdf.xs) == [2.0, 5.0]
        assert cdf.fraction_at_most(2.0) == pytest.approx(0.5)

    def test_quantiles(self):
        cdf = weighted_cdf([10.0, 20.0, 30.0, 40.0])
        assert cdf.quantile(0.25) == 10.0
        assert cdf.quantile(0.5) == 20.0
        assert cdf.median == 20.0
        assert cdf.quantile(1.0) == 40.0

    def test_quantile_bounds(self):
        cdf = weighted_cdf([1.0])
        with pytest.raises(AnalysisError):
            cdf.quantile(1.5)

    def test_fraction_above(self):
        cdf = weighted_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_above(2.0) == pytest.approx(0.5)

    def test_series_copies(self):
        cdf = weighted_cdf([1.0, 2.0])
        xs, ps = cdf.series()
        xs[0] = 99.0
        assert cdf.xs[0] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            weighted_cdf([])

    def test_mismatched_weights(self):
        with pytest.raises(AnalysisError):
            weighted_cdf([1.0, 2.0], weights=[1.0])

    def test_negative_weights(self):
        with pytest.raises(AnalysisError):
            weighted_cdf([1.0], weights=[-1.0])

    def test_zero_total_weight(self):
        with pytest.raises(AnalysisError):
            weighted_cdf([1.0, 2.0], weights=[0.0, 0.0])

    def test_nan_weight_rejected(self):
        # A NaN weight makes the total NaN, which used to sneak past the
        # ``total <= 0`` check and silently divide the CDF into all-NaN.
        with pytest.raises(AnalysisError):
            weighted_cdf([1.0, 2.0], weights=[float("nan"), 1.0])

    def test_infinite_weight_rejected(self):
        with pytest.raises(AnalysisError):
            weighted_cdf([1.0, 2.0], weights=[float("inf"), 1.0])

    def test_fraction_below_zero_weight_raises_not_nan(self):
        from repro.analysis import weighted_fraction_below

        with pytest.raises(AnalysisError):
            weighted_fraction_below([1.0, 2.0], 1.5, weights=[0.0, 0.0])

    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=500)
        weights = rng.uniform(0.1, 2.0, size=500)
        cdf = weighted_cdf(values, weights)
        assert (np.diff(cdf.ps) >= -1e-12).all()
        assert cdf.ps[-1] == pytest.approx(1.0)


class TestCcdf:
    def test_complement(self):
        values = [1.0, 2.0, 3.0]
        cdf = weighted_cdf(values)
        ccdf = weighted_ccdf(values)
        assert ccdf.ps == pytest.approx(1.0 - cdf.ps)


class TestHelpers:
    def test_weighted_quantile(self):
        assert weighted_quantile([5.0, 1.0, 3.0], 0.5) == 3.0

    def test_weighted_fraction_below(self):
        assert weighted_fraction_below([1.0, 2.0, 3.0, 4.0], 2.5) == pytest.approx(0.5)


class TestBootstrap:
    def test_ci_brackets_statistic(self):
        rng = np.random.default_rng(1)
        values = rng.normal(10.0, 2.0, size=400)
        lo, hi = bootstrap_ci(values, np.median, n_resamples=200, rng=rng)
        assert lo <= np.median(values) <= hi
        assert hi - lo < 1.0

    def test_deterministic_default_rng(self):
        values = list(range(50))
        a = bootstrap_ci(values, np.mean, n_resamples=50)
        b = bootstrap_ci(values, np.mean, n_resamples=50)
        assert a == b

    def test_alpha_validation(self):
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0, 2.0], np.mean, alpha=1.5)

    def test_weighted_resampling(self):
        # With all weight on one value, the CI collapses onto it.
        lo, hi = bootstrap_ci(
            [1.0, 100.0], np.mean, n_resamples=50, weights=[1.0, 0.0]
        )
        assert lo == hi == 1.0
