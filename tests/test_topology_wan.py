"""Tests for the private WAN backbone graph."""

import pytest

from repro.errors import TopologyError
from repro.geo import city_named, great_circle_km, propagation_one_way_ms
from repro.topology import PointOfPresence, PrivateWan


def pops(*names):
    return [
        PointOfPresence(name[:3].lower(), city_named(name)) for name in names
    ]


class TestConstruction:
    def test_duplicate_codes_rejected(self):
        ps = [
            PointOfPresence("aaa", city_named("London")),
            PointOfPresence("aaa", city_named("Paris")),
        ]
        with pytest.raises(TopologyError):
            PrivateWan(ps, [("aaa", "aaa")])

    def test_needs_at_least_one_pop(self):
        with pytest.raises(TopologyError):
            PrivateWan([], [])

    def test_disconnected_backbone_rejected(self):
        ps = pops("London", "Paris", "Tokyo")
        with pytest.raises(TopologyError):
            PrivateWan(ps, [("lon", "par")])  # Tokyo unreachable

    def test_self_loop_rejected(self):
        ps = pops("London")
        with pytest.raises(TopologyError):
            PrivateWan(ps, [("lon", "lon")])

    def test_unknown_pop_in_backbone(self):
        ps = pops("London", "Paris")
        with pytest.raises(TopologyError):
            PrivateWan(ps, [("lon", "xxx")])

    def test_subunit_inflation_rejected(self):
        ps = pops("London", "Paris")
        with pytest.raises(TopologyError):
            PrivateWan(ps, [("lon", "par")], inflation=0.5)


class TestShortestPaths:
    @pytest.fixture
    def wan(self):
        # Chain: London - Paris - Frankfurt, plus a direct London-Frankfurt
        # edge would be shorter; omit it so the path is forced via Paris.
        ps = pops("London", "Paris", "Frankfurt")
        return PrivateWan(ps, [("lon", "par"), ("par", "fra")], inflation=1.1)

    def test_direct_edge_latency(self, wan):
        km = great_circle_km(
            city_named("London").location, city_named("Paris").location
        )
        assert wan.one_way_ms("lon", "par") == pytest.approx(
            propagation_one_way_ms(km, 1.1)
        )

    def test_two_hop_path(self, wan):
        expected = wan.one_way_ms("lon", "par") + wan.one_way_ms("par", "fra")
        assert wan.one_way_ms("lon", "fra") == pytest.approx(expected)
        assert [p.code for p in wan.path("lon", "fra")] == ["lon", "par", "fra"]

    def test_rtt_doubles(self, wan):
        assert wan.rtt_ms("lon", "fra") == pytest.approx(
            2 * wan.one_way_ms("lon", "fra")
        )

    def test_zero_to_self(self, wan):
        assert wan.one_way_ms("par", "par") == 0.0
        assert [p.code for p in wan.path("par", "par")] == ["par"]

    def test_symmetric(self, wan):
        assert wan.one_way_ms("lon", "fra") == pytest.approx(
            wan.one_way_ms("fra", "lon")
        )

    def test_shortcut_edge_wins(self):
        # Adding a direct edge makes the one-hop path the shortest.
        ps = pops("London", "Paris", "Frankfurt")
        wan = PrivateWan(
            ps, [("lon", "par"), ("par", "fra"), ("lon", "fra")], inflation=1.1
        )
        assert [p.code for p in wan.path("lon", "fra")] == ["lon", "fra"]


class TestLookups:
    @pytest.fixture
    def wan(self):
        ps = pops("London", "Paris", "Tokyo")
        return PrivateWan(ps, [("lon", "par"), ("par", "tok")])

    def test_pop_lookup(self, wan):
        assert wan.pop("lon").city.name == "London"
        with pytest.raises(TopologyError):
            wan.pop("zzz")

    def test_pop_at_city(self, wan):
        assert wan.pop_at_city(city_named("Paris")).code == "par"
        assert wan.pop_at_city(city_named("Madrid")) is None

    def test_nearest_pop(self, wan):
        # Osaka is nearest to the Tokyo PoP.
        assert wan.nearest_pop(city_named("Osaka").location).code == "tok"
        # Madrid is nearest to Paris among {London, Paris, Tokyo}... it is
        # actually closer to Paris than London.
        assert wan.nearest_pop(city_named("Madrid").location).code == "par"

    def test_pops_order_preserved(self, wan):
        assert wan.pop_codes == ["lon", "par", "tok"]
