"""Tests for the iterative grooming study."""

import pytest

from repro.errors import AnalysisError
from repro.cdn import groom_iteratively
from repro.workloads import generate_client_prefixes


@pytest.fixture(scope="module")
def study(small_internet):
    prefixes = generate_client_prefixes(small_internet, 60, seed=13)
    return groom_iteratively(small_internet, prefixes, max_actions=12)


class TestGroomingStudy:
    def test_first_step_is_ungroomed(self, study):
        assert study.steps[0].action == "ungroomed"
        assert study.steps[0].suppressed_asn is None

    def test_actions_bounded(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 40, seed=13)
        result = groom_iteratively(small_internet, prefixes, max_actions=2)
        assert len(result.steps) <= 3

    def test_never_regresses_much(self, study):
        for earlier, later in zip(study.steps[:-1], study.steps[1:]):
            assert later.frac_within_10ms >= earlier.frac_within_10ms - 0.1

    def test_improvement_nonnegative(self, study):
        assert study.improvement_within_10ms >= -0.05

    def test_suppressions_unique(self, study):
        suppressed = [
            s.suppressed_asn for s in study.steps if s.suppressed_asn is not None
        ]
        assert len(suppressed) == len(set(suppressed))

    def test_only_peers_suppressed(self, study, small_internet):
        from repro.topology import Relationship

        for step in study.steps[1:]:
            link = small_internet.graph.link(
                small_internet.provider_asn, step.suppressed_asn
            )
            assert link.relationship is Relationship.PEER

    def test_validation(self, small_internet):
        with pytest.raises(AnalysisError):
            groom_iteratively(small_internet, [])
        prefixes = generate_client_prefixes(small_internet, 5, seed=13)
        with pytest.raises(AnalysisError):
            groom_iteratively(small_internet, prefixes, max_actions=0)
