"""Tests for the Speedchecker-like measurement platform."""

import pytest

from repro.errors import MeasurementError
from repro.cloudtiers import CloudDeployment, SpeedcheckerPlatform, Tier
from repro.cloudtiers.speedchecker import PING_CREDITS, TRACEROUTE_CREDITS


@pytest.fixture(scope="module")
def platform(small_internet):
    return SpeedcheckerPlatform(CloudDeployment(small_internet), seed=4)


class TestInventory:
    def test_one_vp_per_eyeball_city(self, platform, small_internet):
        expected = sum(
            len(small_internet.graph.get(asn).cities)
            for asn in small_internet.eyeball_asns
        )
        assert len(platform.vantage_points) == expected

    def test_location_key(self, platform):
        vp = platform.vantage_points[0]
        assert vp.location_key == (vp.city.name, vp.asn)

    def test_daily_rotation_changes_panel(self, platform):
        a = platform.select_vantage_points(0, 20)
        b = platform.select_vantage_points(1, 20)
        assert [vp.vp_id for vp in a] != [vp.vp_id for vp in b]

    def test_rotation_deterministic(self, platform, small_internet):
        other = SpeedcheckerPlatform(CloudDeployment(small_internet), seed=4)
        a = [vp.vp_id for vp in platform.select_vantage_points(3, 15)]
        b = [vp.vp_id for vp in other.select_vantage_points(3, 15)]
        assert a == b

    def test_rotation_covers_inventory(self, platform):
        seen = set()
        count = 25
        days = len(platform.vantage_points) // count + 1
        for day in range(days):
            seen.update(vp.vp_id for vp in platform.select_vantage_points(day, count))
        assert seen == {vp.vp_id for vp in platform.vantage_points}

    def test_positive_count_required(self, platform):
        with pytest.raises(MeasurementError):
            platform.select_vantage_points(0, 0)


class TestPing:
    def test_ping_returns_samples(self, platform):
        vp = platform.vantage_points[0]
        result = platform.ping(vp, Tier.PREMIUM, 1.0, count=5)
        assert result is not None
        assert len(result.rtts_ms) == 5
        assert result.min_ms <= result.median_ms
        assert all(r > 0 for r in result.rtts_ms)

    def test_ping_spends_credits(self, small_internet):
        platform = SpeedcheckerPlatform(
            CloudDeployment(small_internet), credits=25, seed=4
        )
        vp = platform.vantage_points[0]
        platform.ping(vp, Tier.PREMIUM, 0.0, count=5)
        assert platform.credits == 25 - 5 * PING_CREDITS

    def test_budget_exhaustion(self, small_internet):
        platform = SpeedcheckerPlatform(
            CloudDeployment(small_internet), credits=3, seed=4
        )
        vp = platform.vantage_points[0]
        with pytest.raises(MeasurementError):
            platform.ping(vp, Tier.PREMIUM, 0.0, count=5)

    def test_count_validation(self, platform):
        with pytest.raises(MeasurementError):
            platform.ping(platform.vantage_points[0], Tier.PREMIUM, 0.0, count=0)


class TestTraceroute:
    def test_traceroute_structure(self, platform, small_internet):
        vp = platform.vantage_points[0]
        result = platform.traceroute(vp, Tier.STANDARD, 1.0)
        assert result is not None
        assert result.hops[0].asn == vp.asn
        assert result.as_path[0] == vp.asn
        assert result.as_path[-1] == small_internet.provider_asn
        # Cumulative RTT is non-decreasing.
        rtts = [hop.rtt_ms for hop in result.hops]
        assert rtts == sorted(rtts)

    def test_ingress_city_standard_is_dc(self, platform, small_internet):
        vp = platform.vantage_points[0]
        result = platform.traceroute(vp, Tier.STANDARD, 1.0)
        assert result.ingress_city(small_internet.provider_asn) == (
            small_internet.dc_pop.city
        )

    def test_traceroute_spends_credits(self, small_internet):
        platform = SpeedcheckerPlatform(
            CloudDeployment(small_internet), credits=10, seed=4
        )
        platform.traceroute(platform.vantage_points[0], Tier.PREMIUM, 0.0)
        assert platform.credits == 10 - TRACEROUTE_CREDITS

    def test_ingress_city_none_when_absent(self, platform, small_internet):
        vp = platform.vantage_points[0]
        result = platform.traceroute(vp, Tier.PREMIUM, 1.0)
        assert result.ingress_city(999_999) is None


class TestHttpGet:
    def test_download_timed(self, platform):
        vp = platform.vantage_points[0]
        result = platform.http_get(vp, Tier.PREMIUM, 1.0, size_mb=10.0)
        assert result is not None
        assert result.duration_s > 0
        assert 0 < result.goodput_mbps <= 50.0

    def test_spends_credits(self, small_internet):
        from repro.cloudtiers.speedchecker import HTTP_GET_CREDITS

        platform = SpeedcheckerPlatform(
            CloudDeployment(small_internet), credits=10, seed=4
        )
        platform.http_get(platform.vantage_points[0], Tier.PREMIUM, 0.0)
        assert platform.credits == 10 - HTTP_GET_CREDITS

    def test_size_validation(self, platform):
        with pytest.raises(MeasurementError):
            platform.http_get(platform.vantage_points[0], Tier.PREMIUM, 0.0, size_mb=0.0)

    def test_tiers_similar_goodput(self, platform):
        """The §4 footnote at probe level: 10 MB goodput barely differs."""
        vp = platform.vantage_points[0]
        premium = platform.http_get(vp, Tier.PREMIUM, 2.0, size_mb=10.0)
        standard = platform.http_get(vp, Tier.STANDARD, 2.0, size_mb=10.0)
        if premium and standard:
            ratio = premium.goodput_mbps / standard.goodput_mbps
            assert 0.5 < ratio < 2.0


class TestNoiseModel:
    def test_same_vp_same_base(self, platform):
        """Two pings moments apart differ only by noise, not by tens of ms."""
        vp = platform.vantage_points[5]
        a = platform.ping(vp, Tier.PREMIUM, 5.0, count=5)
        b = platform.ping(vp, Tier.PREMIUM, 5.001, count=5)
        assert abs(a.min_ms - b.min_ms) < 10.0

    def test_invalid_budget(self, small_internet):
        with pytest.raises(MeasurementError):
            SpeedcheckerPlatform(CloudDeployment(small_internet), credits=0)
