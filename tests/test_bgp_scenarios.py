"""Scenario library and routing fault plans: hijacks, cascades, recovery."""

from __future__ import annotations

import json

import pytest

from conftest import E2, PROVIDER, build_toy_graph
from repro.availability import scenario_recovery
from repro.bgp import (
    SCENARIOS,
    propagate,
    prefix_hijack,
    more_specific_hijack,
    run_scenario,
    withdrawal_cascade,
)
from repro.bgp.dynamics import DynamicsConfig, DynamicsEngine
from repro.bgp.scenarios import (
    MORE_SPECIFIC_PREFIX,
    VICTIM_PREFIX,
    pick_attacker,
)
from repro.errors import FaultError, RoutingError
from repro.faults import ROUTE_EVENT_KINDS, RouteEvent, ScenarioFaultPlan


class TestRouteEvent:
    def test_kinds_pinned(self):
        assert ROUTE_EVENT_KINDS == (
            "announce",
            "withdraw",
            "link_down",
            "link_up",
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown route event kind"):
            RouteEvent("reboot", 0.0, PROVIDER)

    def test_negative_offset_rejected(self):
        with pytest.raises(FaultError, match="non-negative"):
            RouteEvent("announce", -1.0, PROVIDER)

    def test_link_event_needs_peer(self):
        with pytest.raises(FaultError, match="peer endpoint"):
            RouteEvent("link_down", 0.0, PROVIDER)


class TestScenarioFaultPlan:
    def test_empty_plan_rejected(self):
        with pytest.raises(FaultError, match="non-empty phase"):
            ScenarioFaultPlan(name="x", phases=())
        with pytest.raises(FaultError, match="non-empty phase"):
            ScenarioFaultPlan(name="x", phases=((),))

    def test_apply_runs_phases_to_quiescence(self, toy_graph):
        neighbor = sorted(toy_graph.neighbors(PROVIDER))[0]
        plan = ScenarioFaultPlan(
            name="flap",
            phases=(
                (RouteEvent("announce", 0.0, PROVIDER),),
                (
                    RouteEvent("link_down", 1.0, PROVIDER, peer=neighbor),
                    RouteEvent("link_up", 4.0, PROVIDER, peer=neighbor),
                ),
            ),
        )
        engine = DynamicsEngine(toy_graph, DynamicsConfig())
        boundaries = plan.apply(engine)
        assert len(boundaries) == 2
        assert engine.converged
        # Flap healed: back to the full-graph fixpoint.
        assert engine.routes() == propagate(toy_graph, PROVIDER)._routes
        inject, quiesce = boundaries[1]
        assert quiesce >= inject

    def test_describe_counts_events(self):
        plan = ScenarioFaultPlan(
            name="x",
            phases=(
                (
                    RouteEvent("announce", 0.0, PROVIDER),
                    RouteEvent("withdraw", 1.0, PROVIDER),
                ),
            ),
        )
        text = plan.describe()
        assert "announce=1" in text and "withdraw=1" in text


@pytest.fixture(scope="module")
def toy():
    return build_toy_graph()


class TestPrefixHijack:
    def test_attacker_captures_some_catchment(self, toy):
        result = prefix_hijack(toy, PROVIDER, E2)
        assert result.converged
        assert result.name == "hijack"
        assert result.metrics["captured_ases"] >= 1
        assert 0 < result.metrics["captured_fraction"] <= 1
        assert result.time_to_reconverge_s > 0
        assert result.timeline

    def test_same_attacker_and_victim_rejected(self, toy):
        with pytest.raises(RoutingError, match="must differ"):
            prefix_hijack(toy, PROVIDER, PROVIDER)


class TestMoreSpecificHijack:
    def test_specific_prefix_wins_by_lpm(self, toy):
        result = more_specific_hijack(toy, PROVIDER, E2)
        assert result.converged
        # Every AS reached by the /25 counts as captured.
        assert (
            result.metrics["captured_ases"]
            == result.metrics["specific_reach"] - 1
        )
        assert result.metrics["covering_reach"] == len(toy)


class TestWithdrawalCascade:
    def test_recovers_baseline_bit_identical(self, toy):
        result = withdrawal_cascade(toy, PROVIDER)
        assert result.converged
        assert result.recovered is True
        assert result.metrics["stranded_routes"] == 0
        assert result.metrics["cascade_s"] > 0
        assert result.metrics["time_to_recover_s"] > 0

    def test_recovery_metrics_integrate_outage(self, toy):
        result = withdrawal_cascade(toy, PROVIDER)
        recovery = scenario_recovery(result, toy)
        assert recovery.fully_recovered
        assert recovery.affected_ases == len(toy)
        assert recovery.unrecovered_ases == 0
        assert recovery.max_outage_s > 0
        assert recovery.outage_user_seconds > 0
        assert recovery.time_to_recover_s == pytest.approx(
            result.metrics["time_to_recover_s"]
        )


class TestRegistry:
    def test_names_pinned(self):
        """The CLI hardcodes these (SCENARIO_NAMES) — keep in sync."""
        assert sorted(SCENARIOS) == [
            "hijack",
            "more-specific-hijack",
            "withdrawal-cascade",
        ]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(RoutingError, match="unknown scenario"):
            run_scenario("nope")

    def test_prefixes_distinct(self):
        assert VICTIM_PREFIX != MORE_SPECIFIC_PREFIX

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_runs_deterministically_on_topology(self, name):
        """One (name, seed) pair fixes the full JSON artifact."""
        first = run_scenario(name, seed=1)
        again = run_scenario(name, seed=1)
        assert first.converged
        assert first.timeline
        assert first.to_json() == again.to_json()
        if name == "withdrawal-cascade":
            assert first.recovered is True

    def test_seed_changes_the_timeline(self):
        a = run_scenario("hijack", seed=0)
        b = run_scenario("hijack", seed=2)
        assert a.to_json() != b.to_json()


class TestPickAttacker:
    def test_never_adjacent_to_victim(self, toy):
        attacker = pick_attacker(toy, PROVIDER, seed=0)
        assert attacker != PROVIDER
        assert not toy.has_link(PROVIDER, attacker)

    def test_deterministic_per_seed(self, toy):
        assert pick_attacker(toy, PROVIDER, 5) == pick_attacker(toy, PROVIDER, 5)


class TestResultSerialization:
    def test_summary_round_trips_as_json(self, toy):
        result = prefix_hijack(toy, PROVIDER, E2)
        payload = json.loads(result.to_json())
        assert payload["name"] == "hijack"
        assert payload["victim"] == PROVIDER
        assert payload["attacker"] == E2
        assert payload["timeline_entries"] == len(payload["timeline"])
        assert payload["metrics"]["captured_ases"] >= 1
