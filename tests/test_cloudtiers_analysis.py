"""Tests for the Figure 5 analyses, ingress distances, India, goodput."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.geo import region_of_country
from repro.cloudtiers import (
    CampaignConfig,
    CloudDeployment,
    SpeedcheckerPlatform,
    Tier,
    country_medians,
    goodput_comparison,
    india_case_study,
    ingress_distance_cdf,
    run_campaign,
)


@pytest.fixture(scope="module")
def deployment(small_internet):
    return CloudDeployment(small_internet)


@pytest.fixture(scope="module")
def dataset(deployment):
    platform = SpeedcheckerPlatform(deployment, seed=4)
    return run_campaign(
        platform, CampaignConfig(days=4, vps_per_day=60, rounds_per_day=4, seed=4)
    )


class TestFig5:
    def test_country_values_finite(self, dataset):
        result = country_medians(dataset, min_vps=1)
        assert result.country_diff_ms
        for country, diff in result.country_diff_ms.items():
            assert np.isfinite(diff)
            region_of_country(country)  # every country maps to a region

    def test_min_vps_filter(self, dataset):
        loose = country_medians(dataset, min_vps=1)
        strict = country_medians(dataset, min_vps=3)
        assert set(strict.country_diff_ms) <= set(loose.country_diff_ms)

    def test_better_lists_consistent(self, dataset):
        result = country_medians(dataset, min_vps=1)
        for country in result.premium_better:
            assert result.country_diff_ms[country] > 10.0
        for country in result.standard_better:
            assert result.country_diff_ms[country] < -10.0

    def test_region_medians_cover_reported_countries(self, dataset):
        result = country_medians(dataset, min_vps=1)
        regions = {region_of_country(c) for c in result.country_diff_ms}
        assert set(result.region_medians) == regions


class TestIngress:
    def test_premium_much_nearer(self, dataset, deployment):
        result = ingress_distance_cdf(dataset, deployment)
        premium = result.frac_within_400km[Tier.PREMIUM]
        standard = result.frac_within_400km[Tier.STANDARD]
        # The paper's contrast (80% vs 10%); shape check only.
        assert premium > standard
        assert premium >= 3 * max(standard, 0.01)

    def test_distances_nonnegative(self, dataset, deployment):
        result = ingress_distance_cdf(dataset, deployment)
        for tier in Tier:
            assert (result.distances_km[tier] >= 0).all()


class TestIndia:
    def test_case_study_when_vps_exist(self, dataset, deployment):
        indian_eligible = [
            vp_id
            for vp_id in dataset.eligible
            if dataset.vps[vp_id].city.country == "IN"
        ]
        if not indian_eligible:
            with pytest.raises(AnalysisError):
                india_case_study(dataset, deployment)
            pytest.skip("no eligible Indian vantage points in the small world")
        result = india_case_study(dataset, deployment)
        assert result.n_vps == len(indian_eligible)
        # The WAN hauls east: Premium traceroutes cross the Pacific.
        assert result.frac_premium_via_pacific > 0.5
        # The public Internet goes west via a Tier-1.
        assert result.frac_standard_via_west > 0.5
        # And the Standard tier wins on latency.
        assert result.median_diff_ms < 0


class TestGoodput:
    def test_little_difference(self, dataset):
        """Section 4's footnote: 10 MB goodput is tier-insensitive."""
        result = goodput_comparison(dataset)
        assert 0.5 <= result.median_ratio <= 2.0
        for tier in result.median_goodput_mbps:
            assert result.median_goodput_mbps[tier] > 0

    def test_parameter_validation(self, dataset):
        with pytest.raises(AnalysisError):
            goodput_comparison(dataset, transfer_mb=0)

    def test_smaller_transfers_more_sensitive(self, dataset):
        """Short transfers are dominated by slow start, so the RTT gap
        matters more: the ratio drifts further from 1."""
        small = goodput_comparison(dataset, transfer_mb=0.1)
        large = goodput_comparison(dataset, transfer_mb=50.0)
        assert abs(np.log(large.median_ratio)) <= abs(np.log(small.median_ratio)) + 0.05
