"""Tests for the content-addressed result store."""

import json

import pytest

from repro.core.hypotheses import HypothesisVerdict, Verdict
from repro.core.study import StudyResult
from repro.errors import CacheCorruptionError
from repro.runner import JobSpec, ResultStore


@pytest.fixture
def spec():
    return JobSpec("repro.core.study:PopRoutingStudy", seed=1, config={"days": 0.5})


@pytest.fixture
def result():
    return StudyResult(
        name="pop-routing",
        summary={"diff_p50_ms": -1.25, "n_pairs": 25.0},
        figures={"fig1": object()},
        hypotheses=[
            HypothesisVerdict(
                hypothesis="degrade-together (§3.1.1)",
                verdict=Verdict.SUPPORTED,
                evidence={"co": 0.7},
                explanation="shared bottleneck",
            )
        ],
    )


class TestRoundtrip:
    def test_put_then_get(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.put(spec, result, elapsed_s=2.5)
        cached = store.get(spec)
        assert cached is not None
        assert cached.elapsed_s == 2.5
        assert cached.result.name == "pop-routing"
        assert cached.result.summary == result.summary
        assert cached.result.hypotheses == result.hypotheses
        # Figures are deliberately not persisted.
        assert cached.result.figures == {}

    def test_artifacts_roundtrip_verbatim(self, tmp_path, spec, result):
        """Unlike figures, artifacts are plain JSON and must survive
        the cache byte-for-byte (the streaming shard merge depends on
        this)."""
        result.artifacts = {
            "ingest_snapshot": {"schema": 1, "entries": [{"window": 3}]}
        }
        store = ResultStore(tmp_path)
        store.put(spec, result, elapsed_s=0.5)
        cached = store.get(spec)
        assert cached.result.artifacts == result.artifacts

    def test_pre_artifact_entries_still_read(self, tmp_path, spec, result):
        """Cache entries written before the artifacts field existed
        deserialize with an empty artifacts dict, not an error."""
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.5)
        document = json.loads(path.read_text(encoding="utf-8"))
        del document["result"]["artifacts"]
        from repro.runner.store import payload_checksum

        document["checksum"] = payload_checksum(document["result"])
        path.write_text(json.dumps(document), encoding="utf-8")
        cached = store.get(spec)
        assert cached is not None
        assert cached.result.artifacts == {}

    def test_nan_summary_value_roundtrips(self, tmp_path, spec, result):
        result.summary["frac_within_10ms_world"] = float("nan")
        store = ResultStore(tmp_path)
        store.put(spec, result, elapsed_s=0.1)
        value = store.get(spec).result.summary["frac_within_10ms_world"]
        assert value != value

    def test_layout_is_sharded_by_hash(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        digest = spec.content_hash
        assert path == tmp_path / digest[:2] / f"{digest}.json"
        assert path.exists()

    def test_put_overwrites(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.put(spec, result, elapsed_s=1.0)
        result.summary["n_pairs"] = 99.0
        store.put(spec, result, elapsed_s=2.0)
        cached = store.get(spec)
        assert cached.result.summary["n_pairs"] == 99.0
        assert cached.elapsed_s == 2.0


class TestMissesAreSafe:
    def test_absent_is_miss(self, tmp_path, spec):
        assert ResultStore(tmp_path).get(spec) is None

    def test_changed_seed_or_config_is_miss(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        store.put(spec, result, elapsed_s=0.0)
        assert store.get(JobSpec(spec.study, seed=2, config=spec.config)) is None
        assert store.get(JobSpec(spec.study, seed=1, config={"days": 1.0})) is None

    def test_corrupted_entry_is_miss(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        path.write_text("{not json", encoding="utf-8")
        assert store.get(spec) is None

    def test_wrong_schema_version_is_miss(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["schema"] = 999
        path.write_text(json.dumps(document), encoding="utf-8")
        assert store.get(spec) is None

    def test_wrong_kind_is_miss(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["kind"] = "beacon"
        path.write_text(json.dumps(document), encoding="utf-8")
        assert store.get(spec) is None

    def test_truncated_payload_is_miss(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        document = json.loads(path.read_text(encoding="utf-8"))
        del document["result"]["summary"]
        path.write_text(json.dumps(document), encoding="utf-8")
        assert store.get(spec) is None


class TestCorruptionQuarantine:
    """Regression tests: damage is typed, quarantined, recomputed once."""

    def test_read_entry_raises_on_garbled_json(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CacheCorruptionError, match="not valid JSON"):
            store.read_entry(spec)

    def test_read_entry_raises_on_checksum_mismatch(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["result"]["summary"]["n_pairs"] = 26.0  # flipped digit
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(CacheCorruptionError, match="checksum"):
            store.read_entry(spec)

    def test_read_entry_raises_on_missing_fields(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        document = json.loads(path.read_text(encoding="utf-8"))
        del document["result"]
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(CacheCorruptionError):
            store.read_entry(spec)

    def test_missing_checksum_is_tolerated(self, tmp_path, spec, result):
        """Entries written before checksums existed still read cleanly."""
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=1.5)
        document = json.loads(path.read_text(encoding="utf-8"))
        del document["checksum"]
        path.write_text(json.dumps(document), encoding="utf-8")
        cached = store.read_entry(spec)
        assert cached is not None and cached.elapsed_s == 1.5

    def test_get_quarantines_damaged_entry(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        path.write_text("\xde\xad garbage", encoding="utf-8")
        assert store.get(spec) is None
        assert not path.exists()
        pen = store.quarantined()
        assert [p.name for p in pen] == [f"{spec.content_hash}.json"]

    def test_quarantined_entry_stays_a_miss_then_recomputes(
        self, tmp_path, spec, result
    ):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        path.write_text("{torn", encoding="utf-8")
        assert store.get(spec) is None  # quarantined here
        assert store.get(spec) is None  # plain miss now, no error
        # Recompute: a fresh put makes the entry good again.
        store.put(spec, result, elapsed_s=3.0)
        assert store.get(spec).elapsed_s == 3.0
        assert len(store.quarantined()) == 1  # post-mortem copy kept

    def test_foreign_entry_is_not_quarantined(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["schema"] = 999
        path.write_text(json.dumps(document), encoding="utf-8")
        assert store.read_entry(spec) is None  # miss, not an exception
        assert store.get(spec) is None
        assert path.exists()  # the other build's entry is left alone
        assert store.quarantined() == []

    def test_quarantine_missing_entry_returns_none(self, tmp_path, spec):
        assert ResultStore(tmp_path).quarantine(spec) is None

    def test_checksum_written_on_put(self, tmp_path, spec, result):
        from repro.runner.store import payload_checksum

        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["checksum"] == payload_checksum(document["result"])


class TestStaleTmpSweep:
    def test_stale_tmp_removed_on_open(self, tmp_path, spec, result):
        import os
        import time

        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        orphan = path.with_name(f"{path.name}.tmp99999")
        orphan.write_text("{half-written", encoding="utf-8")
        old = time.time() - 7200.0
        os.utime(orphan, (old, old))
        ResultStore(tmp_path)  # reopening sweeps the orphan
        assert not orphan.exists()
        assert path.exists()  # the real entry is untouched
        assert store.get(spec) is not None

    def test_fresh_tmp_survives_sweep(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        live = path.with_name(f"{path.name}.tmp88888")
        live.write_text("{concurrent-writer", encoding="utf-8")
        ResultStore(tmp_path)
        assert live.exists()  # recent: may belong to a live writer
        live.unlink()

    def test_sweep_counts_and_age_override(self, tmp_path, spec, result):
        store = ResultStore(tmp_path)
        path = store.put(spec, result, elapsed_s=0.0)
        orphan = path.with_name(f"{path.name}.tmp77777")
        orphan.write_text("x", encoding="utf-8")
        # With a zero age threshold even a fresh temp file is stale.
        assert ResultStore(tmp_path, stale_tmp_age_s=0.0).sweep_stale_tmp() >= 0
        assert not orphan.exists()

    def test_open_on_missing_root_is_fine(self, tmp_path):
        store = ResultStore(tmp_path / "never-created")
        assert store.sweep_stale_tmp() == 0
