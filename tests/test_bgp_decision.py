"""Tests for the provider's egress decision process."""

import pytest

from repro.errors import RoutingError
from repro.bgp import (
    EgressDecisionProcess,
    RouteClass,
    classify_route,
    propagate,
)
from repro.bgp.decision import DEFAULT_LOCAL_PREF

from conftest import E1, E2, PROVIDER, T1A, TR2


class TestClassification:
    def test_transit_candidate(self, toy_graph):
        table = propagate(toy_graph, E1)
        candidates = {c.neighbor: c for c in table.candidates_at(PROVIDER)}
        assert (
            classify_route(toy_graph, PROVIDER, candidates[T1A])
            is RouteClass.TRANSIT
        )

    def test_private_peer_candidate(self, toy_graph):
        table = propagate(toy_graph, E1)
        candidates = {c.neighbor: c for c in table.candidates_at(PROVIDER)}
        assert (
            classify_route(toy_graph, PROVIDER, candidates[E1])
            is RouteClass.PRIVATE_PEER
        )

    def test_public_peer_candidate(self, toy_graph):
        table = propagate(toy_graph, E2)
        candidates = {c.neighbor: c for c in table.candidates_at(PROVIDER)}
        assert (
            classify_route(toy_graph, PROVIDER, candidates[TR2])
            is RouteClass.PUBLIC_PEER
        )


class TestRanking:
    def test_facebook_policy_order(self, toy_graph):
        # For E2: public peer (TR2) must beat transit (T1A) despite equal
        # or longer paths.
        table = propagate(toy_graph, E2)
        process = EgressDecisionProcess(toy_graph, PROVIDER)
        ranked = process.rank(table.candidates_at(PROVIDER))
        assert ranked[0].candidate.neighbor == TR2
        assert ranked[0].route_class is RouteClass.PUBLIC_PEER
        assert ranked[1].candidate.neighbor == T1A
        assert ranked[0].rank == 0
        assert ranked[1].rank == 1

    def test_private_beats_public(self, toy_graph):
        # Give E1 a public peering candidate too by checking E1's dest:
        # PNI (private) must rank above the transit.
        table = propagate(toy_graph, E1)
        process = EgressDecisionProcess(toy_graph, PROVIDER)
        ranked = process.rank(table.candidates_at(PROVIDER))
        assert ranked[0].route_class is RouteClass.PRIVATE_PEER

    def test_custom_local_pref_flips_order(self, toy_graph):
        # A transit-first policy inverts the ranking.
        table = propagate(toy_graph, E2)
        pref = dict(DEFAULT_LOCAL_PREF)
        pref[RouteClass.TRANSIT] = 500
        process = EgressDecisionProcess(toy_graph, PROVIDER, local_pref=pref)
        ranked = process.rank(table.candidates_at(PROVIDER))
        assert ranked[0].route_class is RouteClass.TRANSIT

    def test_top_k_truncates(self, toy_graph):
        table = propagate(toy_graph, E2)
        process = EgressDecisionProcess(toy_graph, PROVIDER)
        assert len(process.top(table.candidates_at(PROVIDER), 1)) == 1

    def test_empty_candidates_rejected(self, toy_graph):
        process = EgressDecisionProcess(toy_graph, PROVIDER)
        with pytest.raises(RoutingError):
            process.rank([])

    def test_shorter_path_wins_within_class(self, small_internet):
        """Within a preference class, ranking follows advertised length."""
        from repro.bgp import propagate as run

        graph = small_internet.graph
        process = EgressDecisionProcess(graph, small_internet.provider_asn)
        table = run(graph, small_internet.eyeball_asns[0])
        ranked = process.rank(table.candidates_at(small_internet.provider_asn))
        for earlier, later in zip(ranked[:-1], ranked[1:]):
            if earlier.route_class is later.route_class:
                assert (
                    earlier.candidate.route.advertised_length
                    <= later.candidate.route.advertised_length
                )
            else:
                assert earlier.local_pref >= later.local_pref


class TestTotalTieBreak:
    """rank() must be a total order: equal-preference routes cannot tie."""

    def _sibling_candidates(self, toy_graph):
        from repro.bgp.routes import NeighborRoute, Route

        table = propagate(toy_graph, E2)
        base = {c.neighbor: c for c in table.candidates_at(PROVIDER)}[TR2]
        # Same neighbor, same link, same advertised length, same class —
        # only the AS path differs.  Before the total tie-break these two
        # compared equal and their order depended on input order.
        sibling_route = Route(
            path=base.route.path[:-1] + (99999,),
            pref=base.route.pref,
            advertised_length=base.route.advertised_length,
        )
        sibling = NeighborRoute(
            neighbor=base.neighbor, route=sibling_route, link=base.link
        )
        return base, sibling

    def test_rank_independent_of_input_order(self, toy_graph):
        base, sibling = self._sibling_candidates(toy_graph)
        process = EgressDecisionProcess(toy_graph, PROVIDER)
        forward = [r.candidate.route.path for r in process.rank([base, sibling])]
        reverse = [r.candidate.route.path for r in process.rank([sibling, base])]
        assert forward == reverse

    def test_key_is_strictly_ordered(self, toy_graph):
        base, sibling = self._sibling_candidates(toy_graph)
        process = EgressDecisionProcess(toy_graph, PROVIDER)
        assert process._key(base) != process._key(sibling)

    def test_ranking_still_prefers_lower_neighbor_on_real_ties(self, toy_graph):
        # The neighbor ASN remains the leading tie-break across neighbors.
        table = propagate(toy_graph, E2)
        process = EgressDecisionProcess(toy_graph, PROVIDER)
        ranked = process.rank(table.candidates_at(PROVIDER))
        keys = [process._key(r.candidate) for r in ranked]
        assert keys == sorted(keys)
