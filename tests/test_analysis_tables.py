"""Tests for text rendering helpers."""

import pytest

from repro.errors import AnalysisError
from repro.analysis import format_table, text_cdf, text_choropleth, text_histogram
from repro.geo import Region


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 20.25]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in out
        assert "20.25" in out
        assert set(lines[1]) <= {"-", " "}

    def test_row_width_mismatch(self):
        with pytest.raises(AnalysisError):
            format_table(["a", "b"], [["only-one"]])

    def test_needs_headers(self):
        with pytest.raises(AnalysisError):
            format_table([], [])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestTextHistogram:
    def test_renders_bins(self):
        out = text_histogram([1, 1, 2, 3, 3, 3], n_bins=3)
        assert out.count("\n") == 2
        assert "█" in out

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            text_histogram([])


class TestTextCdf:
    def test_quantile_rows(self):
        out = text_cdf([1.0, 2.0, 3.0], [0.3, 0.6, 1.0], points=(0.5, 0.9))
        assert "p50" in out
        assert "p90" in out

    def test_mismatched_series(self):
        with pytest.raises(AnalysisError):
            text_cdf([1.0], [0.5, 1.0])


class TestTextChoropleth:
    def test_groups_by_region(self):
        out = text_choropleth(
            {"US": 5.0, "IN": -20.0, "DE": 1.0},
            {"US": Region.NORTH_AMERICA, "IN": Region.ASIA, "DE": Region.EUROPE},
        )
        assert "north-america" in out
        assert "asia" in out
        assert "+5.0" in out
        assert "-20.0" in out

    def test_missing_region_rejected(self):
        with pytest.raises(AnalysisError):
            text_choropleth({"US": 1.0}, {})

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            text_choropleth({}, {})
