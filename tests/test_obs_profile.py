"""Tests for the profiling plane: span trees, flamegraphs, critical path.

Adversarial-stream coverage is the point: truncated traces (crashed
worker), orphaned ``span_end`` events, replayed cache-hit events, and
interleaved multi-process / reused span ids must degrade to counted
anomalies, never to wrong attribution or a crash.  The suite ends with
the acceptance check: a real (stubbed) campaign's profile attributes
cumulative self-time within 5% of the campaign wall-clock span, and
the flamegraph export round-trips through ``parse_collapsed``.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro import obs
from repro.core.study import StudyResult
from repro.errors import ObsError
from repro.obs import (
    build_forest,
    collapsed_stacks,
    critical_path,
    parse_collapsed,
    profile_events,
    profile_forest,
)
from repro.runner import CampaignRunner, JobSpec, ResultStore


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with tracing disabled."""
    obs.disable()
    yield
    obs.disable()


def start(pid, span, name, ts=0.0, parent=None, attrs=None, replay=False):
    event = {
        "v": 2,
        "run": "r",
        "ts": ts,
        "kind": "span_start",
        "name": name,
        "pid": pid,
        "span": span,
    }
    if parent is not None:
        event["parent"] = parent
    if attrs:
        event["attrs"] = attrs
    if replay:
        event["replay"] = True
    return event


def end(pid, span, name, dur_s, ts=0.0, error=None, replay=False):
    event = {
        "v": 2,
        "run": "r",
        "ts": ts,
        "kind": "span_end",
        "name": name,
        "pid": pid,
        "span": span,
        "dur_s": dur_s,
    }
    if error is not None:
        event["error"] = error
    if replay:
        event["replay"] = True
    return event


class TestForestReconstruction:
    def test_nesting_and_self_time(self):
        events = [
            start(1, 1, "outer"),
            start(1, 2, "inner", parent=1),
            end(1, 2, "inner", 3.0),
            end(1, 1, "outer", 5.0),
        ]
        forest = build_forest(events)
        assert forest.n_spans == 2
        assert forest.n_unclosed == 0
        (outer,) = forest.roots
        assert outer.name == "outer"
        (inner,) = outer.children
        assert inner.parent is outer
        assert inner.self_s == pytest.approx(3.0)
        assert outer.self_s == pytest.approx(2.0)
        assert inner.path() == ("outer", "inner")

    def test_truncated_trace_counts_unclosed(self):
        # A crashed worker never closes its spans: no duration can be
        # trusted, so self-time is 0 and the anomaly is surfaced.
        events = [
            start(1, 1, "outer"),
            start(1, 2, "inner", parent=1),
            end(1, 2, "inner", 3.0),
            # stream truncated: no end for span 1
        ]
        forest = build_forest(events)
        assert forest.n_unclosed == 1
        (outer,) = forest.roots
        assert not outer.closed
        assert outer.self_s == 0.0
        profile = profile_forest(forest)
        row = next(r for r in profile.rows if r.name == "outer")
        assert row.unclosed == 1
        assert row.cum_s == 0.0
        assert "unclosed" in profile.render()

    def test_orphan_end_counted_not_crashed(self):
        events = [
            end(1, 99, "ghost", 1.0),
            start(1, 1, "real"),
            end(1, 1, "real", 2.0),
        ]
        forest = build_forest(events)
        assert forest.n_orphan_ends == 1
        assert forest.n_spans == 1

    def test_replayed_spans_excluded_by_default(self):
        # Cache-hit replays re-describe a previous run's time; counting
        # them would double-bill the wall clock.
        events = [
            start(1, 1, "runner.campaign"),
            start(1, 2, "runner.job", parent=1, replay=True),
            end(1, 2, "runner.job", 40.0, replay=True),
            end(1, 1, "runner.campaign", 1.0),
        ]
        forest = build_forest(events)
        assert forest.n_replay_spans == 2  # start + end both skipped
        assert forest.n_spans == 1
        profile = profile_forest(forest)
        assert profile.total_self_s == pytest.approx(1.0)
        assert "replayed" in profile.render()

        included = build_forest(events, include_replay=True)
        assert included.n_replay_spans == 0
        # Replayed child dur exceeds the live parent's: the parent's
        # self time clamps at zero, so the replayed 40s dominates.
        assert profile_forest(included).total_self_s == pytest.approx(40.0)

    def test_interleaved_multiprocess_span_ids(self):
        # Two workers reuse the same span ids; events interleave in
        # arrival order.  Keying by (pid, span) keeps the trees apart.
        events = [
            start(10, 1, "job"),
            start(20, 1, "job"),
            start(10, 2, "phase", parent=1),
            start(20, 2, "phase", parent=1),
            end(20, 2, "phase", 1.0),
            end(10, 2, "phase", 2.0),
            end(20, 1, "job", 4.0),
            end(10, 1, "job", 8.0),
        ]
        forest = build_forest(events)
        assert forest.n_spans == 4
        assert forest.n_unclosed == 0
        by_pid = {root.pid: root for root in forest.roots}
        assert set(by_pid) == {10, 20}
        assert by_pid[10].self_s == pytest.approx(6.0)
        assert by_pid[20].self_s == pytest.approx(3.0)

    def test_reused_span_ids_across_generations(self):
        # Pool workers recycle pids and each job's fresh tracer restarts
        # span ids at 1: same (pid, span) key, two distinct spans.
        events = [
            start(10, 1, "job"),
            end(10, 1, "job", 1.0),
            start(10, 1, "job"),
            end(10, 1, "job", 2.0),
        ]
        forest = build_forest(events)
        assert forest.n_spans == 2
        assert [r.dur_s for r in forest.roots] == [1.0, 2.0]
        assert all(r.closed for r in forest.roots)

    def test_error_spans_reach_profile_rows(self):
        events = [
            start(1, 1, "phase"),
            end(1, 1, "phase", 1.0, error="ValueError"),
        ]
        profile = profile_events(events)
        assert profile.rows[0].errors == 1


class TestProfileRanking:
    def test_ranked_by_self_time_not_cumulative(self):
        events = [
            start(1, 1, "orchestrator"),
            start(1, 2, "kernel", parent=1),
            end(1, 2, "kernel", 3.0),
            end(1, 1, "orchestrator", 5.0),
        ]
        profile = profile_events(events)
        assert [r.name for r in profile.rows] == ["kernel", "orchestrator"]
        assert profile.rows[0].self_s == pytest.approx(3.0)
        assert profile.rows[1].self_s == pytest.approx(2.0)
        assert profile.rows[1].cum_s == pytest.approx(5.0)
        assert profile.wall_s == pytest.approx(5.0)
        assert profile.total_self_s == pytest.approx(5.0)

    def test_render_limit(self):
        events = []
        for i in range(5):
            events.append(start(1, i + 1, f"phase{i}"))
            events.append(end(1, i + 1, f"phase{i}", 1.0 + i))
        text = profile_events(events).render(limit=2)
        assert "phase4" in text and "phase3" in text
        assert "phase0" not in text


class TestCollapsedStacks:
    def test_round_trip(self):
        events = [
            start(1, 1, "outer"),
            start(1, 2, "inner", parent=1),
            end(1, 2, "inner", 0.003),
            end(1, 1, "outer", 0.005),
        ]
        lines = collapsed_stacks(build_forest(events))
        parsed = parse_collapsed("\n".join(lines))
        assert parsed == {
            ("outer",): 2000,
            ("outer", "inner"): 3000,
        }

    def test_zero_weight_paths_dropped(self):
        # The parent's whole duration is inside the child: zero self
        # time must not emit a 0-weight line (speedscope rejects those).
        events = [
            start(1, 1, "outer"),
            start(1, 2, "inner", parent=1),
            end(1, 2, "inner", 0.005),
            end(1, 1, "outer", 0.005),
        ]
        lines = collapsed_stacks(build_forest(events))
        assert lines == ["outer;inner 5000"]
        for line in lines:
            weight = int(line.rsplit(" ", 1)[1])
            assert weight > 0

    def test_same_path_sums(self):
        events = [
            start(1, 1, "job"),
            end(1, 1, "job", 0.001),
            start(1, 2, "job"),
            end(1, 2, "job", 0.002),
        ]
        lines = collapsed_stacks(build_forest(events))
        assert lines == ["job 3000"]

    @pytest.mark.parametrize(
        "text",
        ["just-a-path", "a;b notanint", "a;b -3", "a;b 0", " 5"],
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ObsError, match="malformed"):
            parse_collapsed(text)

    def test_parse_skips_blank_lines(self):
        assert parse_collapsed("\n  \na 1\n") == {("a",): 1}


class TestCriticalPath:
    def _campaign_events(self):
        return [
            start(100, 1, "runner.campaign"),
            start(
                100,
                2,
                "runner.dispatch",
                parent=1,
                attrs={"platform": "edge", "spec": "abc"},
            ),
            end(100, 2, "runner.dispatch", 4.0),
            start(
                100,
                3,
                "runner.dispatch",
                parent=1,
                attrs={"platform": "edge", "spec": "def"},
            ),
            end(100, 3, "runner.dispatch", 6.0),
            end(100, 1, "runner.campaign", 10.0),
            # Worker job spans arrive as roots of their own trees: the
            # process boundary severs the parent link.
            start(200, 1, "runner.job", attrs={"spec": "abc"}),
            end(200, 1, "runner.job", 3.0),
            start(201, 1, "runner.job", attrs={"spec": "def"}),
            end(201, 1, "runner.job", 5.0),
        ]

    def test_chain_workers_idle_and_platform_split(self):
        path = critical_path(build_forest(self._campaign_events()))
        assert path.anchor == "runner.campaign"
        assert path.wall_s == pytest.approx(10.0)
        # Greedy max-duration descent picks the 6s dispatch.
        assert [link.name for link in path.chain] == [
            "runner.campaign",
            "runner.dispatch",
        ]
        assert path.chain[1].dur_s == pytest.approx(6.0)
        assert path.n_workers == 2
        assert path.busy_by_pid == {200: pytest.approx(3.0), 201: pytest.approx(5.0)}
        assert path.pool_idle_s == pytest.approx(2 * 10.0 - 8.0)
        (split,) = path.platforms
        assert split.platform == "edge"
        assert split.jobs == 2
        assert split.compute_s == pytest.approx(8.0)
        assert split.queue_s == pytest.approx((4.0 - 3.0) + (6.0 - 5.0))
        text = path.render()
        assert "pool idle" in text and "edge" in text

    def test_missing_anchor_falls_back_to_longest_root(self):
        events = [
            start(1, 1, "standalone"),
            end(1, 1, "standalone", 2.0),
            start(1, 2, "longer"),
            end(1, 2, "longer", 3.0),
        ]
        path = critical_path(build_forest(events))
        assert path.anchor == "longer"
        assert path.wall_s == pytest.approx(3.0)

    def test_no_closed_root_raises(self):
        with pytest.raises(ObsError, match="closed root"):
            critical_path(build_forest([start(1, 1, "only-open")]))


# -- acceptance: a real campaign trace ---------------------------------------


@dataclasses.dataclass
class NapStudy:
    """Sleeps a deterministic beat so wall-clock attribution is real."""

    seed: int = 0
    sleep_s: float = 0.05

    def run(self) -> StudyResult:
        with obs.span("nap.phase", seed=self.seed):
            time.sleep(self.sleep_s)
        return StudyResult(name="nap", summary={"seed": float(self.seed)})


class TestCampaignTraceAcceptance:
    @pytest.fixture()
    def campaign_events(self, tmp_path):
        specs = [
            JobSpec.from_study(NapStudy(seed=s, sleep_s=0.05)) for s in range(3)
        ]
        runner = CampaignRunner(
            store=ResultStore(tmp_path / "cache"), jobs=1, retries=0
        )
        with obs.capture() as captured:
            runner.run(specs)
        return captured.events

    def test_self_time_total_within_5pct_of_wall(self, campaign_events):
        profile = profile_events(campaign_events)
        campaign_row = next(
            r for r in profile.rows if r.name == "runner.campaign"
        )
        assert campaign_row.calls == 1
        assert profile.wall_s > 0
        # The acceptance bar: attributed self time accounts for the
        # campaign wall clock (inline campaigns nest every span under
        # the campaign root, so the sums must agree almost exactly).
        assert profile.total_self_s == pytest.approx(
            profile.wall_s, rel=0.05
        )
        hot = next(r for r in profile.rows if r.name == "nap.phase")
        assert hot.calls == 3
        assert hot.self_s >= 3 * 0.05 * 0.9

    def test_flame_round_trips_and_critical_path_anchors(self, campaign_events):
        forest = build_forest(campaign_events)
        lines = collapsed_stacks(forest)
        assert lines, "campaign trace produced no flamegraph lines"
        parsed = parse_collapsed("\n".join(lines))
        assert sum(parsed.values()) == sum(
            int(line.rsplit(" ", 1)[1]) for line in lines
        )
        assert any(path[0] == "runner.campaign" for path in parsed)
        path = critical_path(forest)
        assert path.anchor == "runner.campaign"
        assert path.chain[0].name == "runner.campaign"
        assert path.wall_s > 0
