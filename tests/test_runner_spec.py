"""Tests for job specs and their content hashes."""

import dataclasses
import enum

import pytest

from repro.errors import RunnerError
from repro.core import PopRoutingStudy
from repro.runner import JobSpec, canonicalize, resolve_study
from repro.topology import TopologyConfig


class Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


@dataclasses.dataclass
class Widget:
    size: int = 2


class TestCanonicalize:
    def test_scalars_pass_through(self):
        assert canonicalize(3) == 3
        assert canonicalize("x") == "x"
        assert canonicalize(True) is True
        assert canonicalize(None) is None
        assert canonicalize(1.5) == 1.5

    def test_non_finite_floats_tagged(self):
        assert canonicalize(float("nan")) == {"__float__": "nan"}
        assert canonicalize(float("inf")) == {"__float__": "inf"}
        assert canonicalize(float("-inf")) == {"__float__": "-inf"}

    def test_tuple_and_list_coincide(self):
        assert canonicalize((1, 2)) == canonicalize([1, 2])

    def test_numpy_scalars(self):
        import numpy as np

        assert canonicalize(np.int64(5)) == 5
        assert canonicalize(np.float64(1.5)) == 1.5

    def test_enum_and_dataclass_tagged_with_class(self):
        tagged = canonicalize(Color.RED)
        assert "Color" in tagged["__enum__"]
        tagged = canonicalize(Widget(size=9))
        assert "Widget" in tagged["__dataclass__"]
        assert tagged["fields"] == {"size": 9}

    def test_mapping_keys_sorted_and_string_only(self):
        assert list(canonicalize({"b": 1, "a": 2})) == ["a", "b"]
        with pytest.raises(RunnerError):
            canonicalize({1: "x"})

    def test_unhashable_value_raises(self):
        with pytest.raises(RunnerError):
            canonicalize(object())


class TestContentHash:
    def test_deterministic(self):
        a = JobSpec("m:C", seed=1, config={"x": 1, "y": (2, 3)})
        b = JobSpec("m:C", seed=1, config={"y": [2, 3], "x": 1})
        assert a.content_hash == b.content_hash
        assert len(a.content_hash) == 64

    @pytest.mark.parametrize(
        "other",
        [
            JobSpec("m:C", seed=2, config={"x": 1}),
            JobSpec("m:D", seed=1, config={"x": 1}),
            JobSpec("m:C", seed=1, config={"x": 2}),
            JobSpec("m:C", seed=1, config={"x": 1, "z": 0}),
        ],
    )
    def test_any_field_change_changes_hash(self, other):
        base = JobSpec("m:C", seed=1, config={"x": 1})
        assert base.content_hash != other.content_hash

    def test_topology_config_hashes(self):
        a = JobSpec("m:C", config={"topology": TopologyConfig(seed=1)})
        b = JobSpec("m:C", config={"topology": TopologyConfig(seed=2)})
        assert a.content_hash != b.content_hash

    def test_unhashable_config_raises(self):
        with pytest.raises(RunnerError):
            JobSpec("m:C", config={"bad": object()}).content_hash


class TestFromStudyAndBuild:
    def test_roundtrip(self):
        study = PopRoutingStudy(seed=7, n_prefixes=12, days=0.5)
        spec = JobSpec.from_study(study)
        assert spec.seed == 7
        assert spec.study.endswith(":PopRoutingStudy")
        assert "seed" not in spec.config
        assert spec.build() == study

    def test_from_study_rejects_classes_and_non_dataclasses(self):
        with pytest.raises(RunnerError):
            JobSpec.from_study(PopRoutingStudy)
        with pytest.raises(RunnerError):
            JobSpec.from_study(object())

    def test_build_rejects_bad_config(self):
        spec = JobSpec("repro.core.study:PopRoutingStudy", config={"nope": 1})
        with pytest.raises(RunnerError):
            spec.build()

    def test_build_requires_run_method(self):
        spec = JobSpec("repro.topology.generator:TopologyConfig")
        with pytest.raises(RunnerError):
            spec.build()

    def test_describe(self):
        spec = JobSpec("repro.core.study:PopRoutingStudy", seed=3)
        assert spec.describe() == "PopRoutingStudy(seed=3)"


class TestResolveStudy:
    def test_resolves(self):
        assert resolve_study("repro.core.study:PopRoutingStudy") is PopRoutingStudy

    @pytest.mark.parametrize(
        "path",
        [
            "no-colon",
            ":OnlyClass",
            "only.module:",
            "no.such.module:Cls",
            "repro.core.study:NoSuchStudy",
        ],
    )
    def test_bad_paths_raise(self, path):
        with pytest.raises(RunnerError):
            resolve_study(path)
