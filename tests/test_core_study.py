"""Tests for the unified Study API (small, fast configurations)."""

import pytest

from repro.core import (
    AnycastCdnStudy,
    CloudTiersStudy,
    PopRoutingStudy,
    StudyResult,
    render_report,
)


@pytest.fixture(scope="module")
def pop_result(small_config):
    return PopRoutingStudy(
        seed=7, n_prefixes=40, days=0.5, topology=small_config
    ).run()


@pytest.fixture(scope="module")
def cdn_result(small_config):
    return AnycastCdnStudy(
        seed=7,
        n_prefixes=40,
        days=1.0,
        requests_per_prefix=24,
        topology=small_config,
    ).run()


@pytest.fixture(scope="module")
def cloud_result(small_config):
    return CloudTiersStudy(
        seed=7, days=3, vps_per_day=50, topology=small_config
    ).run()


class TestPopRoutingStudy:
    def test_result_shape(self, pop_result):
        assert isinstance(pop_result, StudyResult)
        assert pop_result.name == "pop-routing"
        assert {"fig1", "fig2", "persistence", "schemes"} <= set(pop_result.figures)
        assert len(pop_result.hypotheses) == 2

    def test_headline_statistics(self, pop_result):
        summary = pop_result.summary
        assert 0.0 <= summary["frac_alternate_better_5ms"] <= 0.25
        assert summary["omniscient_gain_ms"] >= 0.0
        assert summary["omniscient_gain_ms"] < 10.0


class TestAnycastCdnStudy:
    def test_result_shape(self, cdn_result):
        assert cdn_result.name == "anycast-cdn"
        assert {"fig3", "fig4", "policy"} <= set(cdn_result.figures)
        assert len(cdn_result.hypotheses) == 1

    def test_headline_statistics(self, cdn_result):
        summary = cdn_result.summary
        assert summary["frac_within_10ms_world"] > 0.4
        assert 0.0 <= summary["frac_improved"] <= 1.0
        assert 0.0 <= summary["frac_hurt"] <= 1.0


class TestCloudTiersStudy:
    def test_result_shape(self, cloud_result):
        assert cloud_result.name == "cloud-tiers"
        assert {"fig5", "ingress", "goodput"} <= set(cloud_result.figures)

    def test_headline_statistics(self, cloud_result):
        summary = cloud_result.summary
        assert summary["n_countries"] > 0
        assert (
            summary["premium_ingress_within_400km"]
            > summary["standard_ingress_within_400km"]
        )
        assert 0.5 <= summary["goodput_ratio"] <= 2.0


class TestReport:
    def test_render_covers_all_studies(self, pop_result, cdn_result, cloud_result):
        report = render_report([pop_result, cdn_result, cloud_result])
        assert "pop-routing" in report
        assert "anycast-cdn" in report
        assert "cloud-tiers" in report
        for verdict in pop_result.hypotheses:
            assert verdict.hypothesis in report

    def test_render_empty(self):
        report = render_report([])
        assert "reproduction report" in report
