"""Unit tests for the mergeable quantile sketches.

The property suite (``test_stream_properties.py``) bounds accuracy over
generated inputs; these tests pin the deterministic surface — exact
small-sample paths, serialization byte-identity, merge semantics, and
the error taxonomy.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.errors import StreamError
from repro.stream import (
    RANK_TOLERANCE,
    SKETCH_KINDS,
    CentroidSketch,
    P2Sketch,
    make_sketch,
    sketch_from_dict,
    sketch_from_json,
)


class TestP2Sketch:
    def test_exact_below_five_samples(self):
        sketch = P2Sketch()
        sketch.update_batch([3.0, 1.0, 2.0])
        assert sketch.quantile(0.5) == 2.0

    def test_tracks_exponential_median(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(1.5, size=20_000)
        sketch = P2Sketch()
        sketch.update_batch(samples)
        assert sketch.quantile(0.5) == pytest.approx(
            float(np.median(samples)), rel=0.02
        )

    def test_merge_preserves_count_and_median(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(10.0, 2.0, 4_000), rng.normal(10.0, 2.0, 4_000)
        left = P2Sketch()
        left.update_batch(a)
        right = P2Sketch()
        right.update_batch(b)
        left.merge(right)
        assert left.count == 8_000
        # The inverse-CDF replay merge is documented as approximate; a
        # looser bound than the single-stream case is expected.
        assert left.quantile(0.5) == pytest.approx(
            float(np.median(np.concatenate([a, b]))), rel=0.05
        )

    def test_merge_rejects_mismatched_target(self):
        with pytest.raises(StreamError, match="p="):
            P2Sketch(p=0.5).merge(P2Sketch(p=0.9))

    def test_merge_rejects_foreign_type(self):
        with pytest.raises(StreamError, match="cannot merge"):
            P2Sketch().merge(CentroidSketch())

    def test_empty_query_raises(self):
        with pytest.raises(StreamError, match="empty"):
            P2Sketch().quantile(0.5)

    def test_rejects_nonfinite_samples(self):
        with pytest.raises(StreamError, match="finite"):
            P2Sketch().update(math.nan)
        with pytest.raises(StreamError, match="finite"):
            P2Sketch().update_batch([1.0, math.inf])

    def test_rejects_bad_target_quantile(self):
        with pytest.raises(StreamError, match="target quantile"):
            P2Sketch(p=1.0)


class TestCentroidSketch:
    def test_exact_while_under_centroid_budget(self):
        """Every sample is its own centroid below the budget, so the
        median is exact up to one interpolation ulp."""
        values = np.arange(63, dtype=np.float64) * 1.75 + 3.0
        sketch = CentroidSketch(max_centroids=64)
        sketch.update_batch(values)
        assert sketch.n_centroids == values.size
        assert sketch.quantile(0.5) == pytest.approx(
            float(np.median(values)), rel=1e-12
        )

    def test_compression_bounds_memory(self):
        rng = np.random.default_rng(2)
        sketch = CentroidSketch(max_centroids=64)
        for _ in range(50):
            sketch.update_batch(rng.exponential(1.0, size=1_000))
        assert sketch.n_centroids <= 64
        assert sketch.count == 50_000

    def test_median_within_rank_tolerance(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(1.5, size=30_000)
        sketch = CentroidSketch()
        sketch.update_batch(samples)
        rank = float(np.mean(samples <= sketch.quantile(0.5)))
        assert abs(rank - 0.5) <= RANK_TOLERANCE

    def test_extremes_are_exact(self):
        rng = np.random.default_rng(4)
        samples = rng.normal(0.0, 5.0, size=10_000)
        sketch = CentroidSketch()
        sketch.update_batch(samples)
        assert sketch.quantile(0.0) == float(samples.min())
        assert sketch.quantile(1.0) == float(samples.max())

    def test_merge_matches_concat_statistics(self):
        rng = np.random.default_rng(5)
        a, b = rng.exponential(2.0, 5_000), rng.exponential(2.0, 5_000)
        left = CentroidSketch()
        left.update_batch(a)
        right = CentroidSketch()
        right.update_batch(b)
        left.merge(right)
        both = np.concatenate([a, b])
        assert left.count == both.size
        rank = float(np.mean(both <= left.quantile(0.5)))
        assert abs(rank - 0.5) <= RANK_TOLERANCE

    def test_merge_leaves_other_untouched(self):
        right = CentroidSketch()
        right.update_batch([1.0, 2.0, 3.0])
        before = right.to_json()
        left = CentroidSketch()
        left.update_batch([10.0])
        left.merge(right)
        assert right.to_json() == before

    def test_merge_rejects_mismatched_budget(self):
        with pytest.raises(StreamError, match="max_centroids"):
            CentroidSketch(max_centroids=32).merge(CentroidSketch(max_centroids=64))

    def test_empty_query_raises(self):
        with pytest.raises(StreamError, match="empty"):
            CentroidSketch().quantile(0.5)

    def test_budget_floor_enforced(self):
        with pytest.raises(StreamError, match="max_centroids"):
            CentroidSketch(max_centroids=4)


class TestSerialization:
    @pytest.mark.parametrize("kind", sorted(SKETCH_KINDS))
    def test_json_roundtrip_is_byte_identical(self, kind):
        rng = np.random.default_rng(6)
        sketch = make_sketch(kind)
        for _ in range(5):
            sketch.update_batch(rng.exponential(1.0, size=200))
        text = sketch.to_json()
        assert sketch_from_json(text).to_json() == text

    @pytest.mark.parametrize("kind", sorted(SKETCH_KINDS))
    def test_empty_sketch_roundtrips(self, kind):
        text = make_sketch(kind).to_json()
        restored = sketch_from_json(text)
        assert restored.count == 0
        assert restored.to_json() == text

    def test_canonical_form_is_strict_json(self):
        """No Infinity literals: an empty centroid sketch stores its
        min/max as null, so the payload parses under strict JSON."""
        payload = json.loads(CentroidSketch().to_json())
        assert payload["min"] is None and payload["max"] is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(StreamError, match="unknown sketch kind"):
            sketch_from_dict({"kind": "hll"})

    def test_garbage_json_rejected(self):
        with pytest.raises(StreamError, match="parse"):
            sketch_from_json("{torn")

    def test_malformed_state_rejected(self):
        with pytest.raises(StreamError, match="malformed"):
            sketch_from_dict({"kind": "centroid", "max_centroids": 64})

    def test_make_sketch_unknown_kind(self):
        with pytest.raises(StreamError, match="unknown sketch kind"):
            make_sketch("reservoir")
