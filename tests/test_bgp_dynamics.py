"""Event-driven BGP dynamics: determinism, convergence, session logic.

The lane-agreement contract (dynamics quiescent state == static
``propagate()``) is pinned on generator topologies in
``test_lane_agreement.py``; here the hypothesis suite extends it to
random graphs and random announce/withdraw schedules, and the unit
tests cover the event-loop mechanics the static lane has no analogue
for: MRAI pacing, link flaps, session epochs, and timeline recording.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from conftest import E1, E2, PROVIDER, T1A, TR1, TR2, build_toy_graph
from repro.bgp import propagate
from repro.bgp.dynamics import (
    DEFAULT_PREFIX,
    DynamicsConfig,
    DynamicsEngine,
)
from repro.errors import RoutingError
from repro.geo import WORLD_CITIES
from repro.topology import ASGraph, ASRole, AutonomousSystem, Relationship
from repro.topology.asgraph import link_between


def run_to_quiescence(graph, origin, seed=0, **config_kwargs):
    engine = DynamicsEngine(graph, DynamicsConfig(seed=seed, **config_kwargs))
    engine.schedule_announce(0.0, origin)
    engine.run()
    return engine


class TestConvergence:
    def test_matches_static_propagate(self, toy_graph):
        engine = run_to_quiescence(toy_graph, PROVIDER)
        assert engine.converged
        static = propagate(toy_graph, PROVIDER)
        assert engine.routes() == static._routes

    def test_routing_table_snapshot_bit_identical(self, toy_graph):
        engine = run_to_quiescence(toy_graph, PROVIDER)
        table = engine.routing_table()
        static = propagate(toy_graph, PROVIDER)
        assert table._routes == static._routes
        assert table.origin == static.origin

    def test_every_origin_agrees(self, toy_graph):
        for asys in toy_graph.ases():
            engine = run_to_quiescence(toy_graph, asys.asn)
            static = propagate(toy_graph, asys.asn)
            assert engine.routes() == static._routes, f"origin {asys.asn}"

    def test_mrai_zero_still_agrees(self, toy_graph):
        engine = run_to_quiescence(toy_graph, PROVIDER, mrai_s=0.0)
        assert engine.routes() == propagate(toy_graph, PROVIDER)._routes

    def test_withdraw_drains_everything(self, toy_graph):
        engine = run_to_quiescence(toy_graph, PROVIDER)
        engine.schedule_withdraw(engine.now + 1.0, PROVIDER)
        engine.run()
        assert engine.converged
        assert engine.routes() == {}
        assert engine.withdrawals_sent > 0

    def test_run_until_gives_partial_state(self, toy_graph):
        engine = DynamicsEngine(toy_graph, DynamicsConfig())
        engine.schedule_announce(0.0, PROVIDER)
        engine.run(until=0.0)
        # Only the origin has decided; no UPDATE has been delivered yet.
        assert set(engine.routes()) == {PROVIDER}
        assert not engine.converged
        engine.run()
        assert engine.converged
        assert engine.routes() == propagate(toy_graph, PROVIDER)._routes


class TestLinkEvents:
    def test_link_down_matches_effective_graph(self, toy_graph):
        engine = run_to_quiescence(toy_graph, PROVIDER)
        engine.schedule_link_down(engine.now + 1.0, PROVIDER, E1)
        engine.run()
        assert engine.converged
        static = propagate(engine.effective_graph(), PROVIDER)
        assert engine.routes() == static._routes

    def test_link_up_restores_original_fixpoint(self, toy_graph):
        engine = run_to_quiescence(toy_graph, PROVIDER)
        baseline = engine.routes()
        engine.schedule_link_down(engine.now + 1.0, PROVIDER, E1)
        engine.run()
        assert engine.routes() != baseline
        engine.schedule_link_up(engine.now + 1.0, PROVIDER, E1)
        engine.run()
        assert engine.converged
        assert engine.routes() == baseline

    def test_flap_during_delivery_drops_ghost_updates(self, toy_graph):
        """A flap faster than the link delay must not resurrect routes
        from the pre-flap session (the epoch guard)."""
        engine = DynamicsEngine(
            toy_graph,
            DynamicsConfig(link_delay_s=1.0, link_delay_jitter_s=0.0),
        )
        engine.schedule_announce(0.0, PROVIDER)
        # Down and straight back up, inside the first UPDATE's flight.
        engine.schedule_link_down(0.5, PROVIDER, T1A)
        engine.schedule_link_up(0.6, PROVIDER, T1A)
        engine.run()
        assert engine.converged
        assert engine.routes() == propagate(toy_graph, PROVIDER)._routes

    def test_double_down_rejected(self, toy_graph):
        engine = run_to_quiescence(toy_graph, PROVIDER)
        engine.schedule_link_down(engine.now + 1.0, PROVIDER, E1)
        engine.schedule_link_down(engine.now + 2.0, PROVIDER, E1)
        with pytest.raises(RoutingError, match="already down"):
            engine.run()

    def test_up_without_down_rejected(self, toy_graph):
        engine = DynamicsEngine(toy_graph, DynamicsConfig())
        engine.schedule_link_up(0.0, PROVIDER, E1)
        with pytest.raises(RoutingError, match="not down"):
            engine.run()


class TestMrai:
    def test_pacing_defers_updates(self, toy_graph):
        """With a long MRAI, churn between two origins is rate-limited;
        deferrals must be observed and the end state still correct."""
        engine = DynamicsEngine(toy_graph, DynamicsConfig(mrai_s=30.0))
        engine.schedule_announce(0.0, PROVIDER)
        engine.schedule_withdraw(2.0, PROVIDER)
        engine.schedule_announce(4.0, PROVIDER)
        engine.run()
        assert engine.converged
        assert engine.mrai_deferrals > 0
        assert engine.routes() == propagate(toy_graph, PROVIDER)._routes

    def test_withdrawals_bypass_mrai_by_default(self, toy_graph):
        engine = DynamicsEngine(toy_graph, DynamicsConfig(mrai_s=30.0))
        engine.schedule_announce(0.0, PROVIDER)
        engine.schedule_withdraw(0.5, PROVIDER)
        engine.run()
        assert engine.converged
        assert engine.routes() == {}

    def test_wrate_mode_also_converges_empty(self, toy_graph):
        engine = DynamicsEngine(
            toy_graph, DynamicsConfig(mrai_s=30.0, withdraw_mrai=True)
        )
        engine.schedule_announce(0.0, PROVIDER)
        engine.schedule_withdraw(0.5, PROVIDER)
        engine.run()
        assert engine.converged
        assert engine.routes() == {}

    def test_jitter_varies_by_session_not_by_time(self):
        config = DynamicsConfig(seed=3, mrai_s=10.0, mrai_jitter=0.5)
        engine = DynamicsEngine(build_toy_graph(), config)
        one = engine._mrai_interval((PROVIDER, T1A))
        other = engine._mrai_interval((PROVIDER, E1))
        assert one == engine._mrai_interval((PROVIDER, T1A))
        assert one != other
        assert 5.0 <= one <= 10.0


class TestDeterminism:
    def test_timeline_bit_identical_across_reruns(self, toy_graph):
        timelines = []
        for _ in range(2):
            engine = DynamicsEngine(
                build_toy_graph(), DynamicsConfig(seed=7, record_messages=True)
            )
            engine.schedule_announce(0.0, PROVIDER)
            engine.schedule_withdraw(3.0, PROVIDER)
            engine.schedule_announce(6.0, E2)
            engine.run()
            timelines.append(json.dumps(engine.timeline, sort_keys=True))
        assert timelines[0] == timelines[1]

    def test_seed_changes_timings_not_outcome(self, toy_graph):
        a = run_to_quiescence(build_toy_graph(), PROVIDER, seed=0)
        b = run_to_quiescence(build_toy_graph(), PROVIDER, seed=1)
        assert a.routes() == b.routes()
        times_a = [e["t"] for e in a.timeline]
        times_b = [e["t"] for e in b.timeline]
        assert times_a != times_b


class TestHijackState:
    def test_two_origins_split_the_graph(self, toy_graph):
        engine = run_to_quiescence(toy_graph, PROVIDER)
        engine.schedule_announce(engine.now + 1.0, E2)
        engine.run()
        assert engine.converged
        assert engine.origins() == (PROVIDER, E2)
        routes = engine.routes()
        origins = {route.origin for route in routes.values()}
        assert origins == {PROVIDER, E2}
        # E2's own decision is its ORIGIN route; its transit follows.
        assert routes[E2].origin == E2
        assert routes[TR2].origin == E2

    def test_routing_table_rejects_contested_prefix(self, toy_graph):
        engine = run_to_quiescence(toy_graph, PROVIDER)
        engine.schedule_announce(engine.now + 1.0, E2)
        engine.run()
        with pytest.raises(RoutingError, match="2 active origins"):
            engine.routing_table()


class TestValidation:
    def test_schedule_in_past_rejected(self, toy_graph):
        engine = run_to_quiescence(toy_graph, PROVIDER)
        with pytest.raises(RoutingError, match="in the past"):
            engine.schedule_announce(engine.now - 1.0, E1)

    def test_unknown_origin_rejected(self, toy_graph):
        engine = DynamicsEngine(toy_graph, DynamicsConfig())
        with pytest.raises(RoutingError, match="not in graph"):
            engine.schedule_announce(0.0, 999999)

    def test_withdraw_without_announce_rejected(self, toy_graph):
        engine = DynamicsEngine(toy_graph, DynamicsConfig())
        engine.schedule_withdraw(0.0, PROVIDER)
        with pytest.raises(RoutingError, match="does not originate"):
            engine.run()

    def test_unknown_link_rejected(self, toy_graph):
        engine = DynamicsEngine(toy_graph, DynamicsConfig())
        with pytest.raises(RoutingError, match="no link"):
            engine.schedule_link_down(0.0, E1, E2)

    def test_bad_config_rejected(self):
        with pytest.raises(RoutingError):
            DynamicsConfig(mrai_s=-1.0)
        with pytest.raises(RoutingError):
            DynamicsConfig(link_delay_s=0.0)
        with pytest.raises(RoutingError):
            DynamicsConfig(mrai_jitter=1.5)
        with pytest.raises(RoutingError):
            DynamicsConfig(max_events=0)

    def test_max_events_guard_fires(self, toy_graph):
        engine = DynamicsEngine(toy_graph, DynamicsConfig(max_events=3))
        engine.schedule_announce(0.0, PROVIDER)
        with pytest.raises(RoutingError, match="no quiescence"):
            engine.run()


class TestGrooming:
    def test_grooming_matches_static_lane(self, toy_graph):
        neighbors = sorted(toy_graph.neighbors(PROVIDER))
        prepends = {neighbors[0]: 2}
        suppressed = frozenset({neighbors[-1]})
        engine = DynamicsEngine(toy_graph, DynamicsConfig())
        engine.schedule_announce(
            0.0, PROVIDER, prepends=prepends, suppressed=suppressed
        )
        engine.run()
        static = propagate(
            toy_graph, PROVIDER, prepends=prepends, suppressed=suppressed
        )
        assert engine.routes() == static._routes

    def test_bad_grooming_rejected_at_schedule_time(self, toy_graph):
        engine = DynamicsEngine(toy_graph, DynamicsConfig())
        with pytest.raises(RoutingError):
            engine.schedule_announce(0.0, PROVIDER, prepends={E2: 1})


# --- the hypothesis suite ------------------------------------------------


@st.composite
def world_and_schedule(draw):
    """A random valley-free graph plus a random announce/withdraw
    schedule that ends with exactly one active origin."""
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31 - 1)))
    n_top = draw(st.integers(min_value=1, max_value=3))
    n_mid = draw(st.integers(min_value=1, max_value=4))
    n_leaf = draw(st.integers(min_value=1, max_value=6))
    cities = list(WORLD_CITIES[:20])
    graph = ASGraph()
    tops = list(range(10, 10 + n_top))
    mids = list(range(100, 100 + n_mid))
    leaves = list(range(1000, 1000 + n_leaf))

    def city_sample(k):
        idx = rng.choice(len(cities), size=min(k, len(cities)), replace=False)
        return tuple(cities[i] for i in sorted(idx))

    for asn in tops:
        graph.add_as(AutonomousSystem(asn, f"t{asn}", ASRole.TIER1, city_sample(4)))
    for asn in mids:
        graph.add_as(AutonomousSystem(asn, f"m{asn}", ASRole.TRANSIT, city_sample(3)))
    for asn in leaves:
        graph.add_as(AutonomousSystem(asn, f"l{asn}", ASRole.EYEBALL, city_sample(2)))
    for i, x in enumerate(tops):
        for y in tops[i + 1 :]:
            graph.add_link(link_between(x, y, Relationship.PEER, city_sample(2)))
    for asn in mids:
        ups = rng.choice(tops, size=min(len(tops), int(rng.integers(1, 3))), replace=False)
        for up in sorted(int(u) for u in ups):
            graph.add_link(
                link_between(asn, up, Relationship.CUSTOMER, city_sample(1), customer_asn=asn)
            )
    for asn in leaves:
        pool = mids if mids else tops
        ups = rng.choice(pool, size=min(len(pool), int(rng.integers(1, 3))), replace=False)
        for up in sorted(int(u) for u in ups):
            graph.add_link(
                link_between(asn, up, Relationship.CUSTOMER, city_sample(1), customer_asn=asn)
            )

    asns = tops + mids + leaves
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n_events = draw(st.integers(min_value=1, max_value=6))
    active: set = set()
    schedule = []
    t = 0.0
    for _ in range(n_events):
        t += float(rng.uniform(0.1, 3.0))
        if active and rng.random() < 0.4:
            asn = sorted(active)[int(rng.integers(len(active)))]
            schedule.append(("withdraw", round(t, 3), asn))
            active.discard(asn)
        else:
            asn = asns[int(rng.integers(len(asns)))]
            if asn in active:
                continue
            schedule.append(("announce", round(t, 3), asn))
            active.add(asn)
    survivors = sorted(active)
    if not survivors:
        t += 1.0
        schedule.append(("announce", round(t, 3), asns[0]))
        survivors = [asns[0]]
    for extra in survivors[1:]:
        t += 1.0
        schedule.append(("withdraw", round(t, 3), extra))
    return graph, schedule, survivors[0], seed


def _run_schedule(graph, schedule, seed):
    engine = DynamicsEngine(graph, DynamicsConfig(seed=seed))
    for kind, at_s, asn in schedule:
        if kind == "announce":
            engine.schedule_announce(at_s, asn)
        else:
            engine.schedule_withdraw(at_s, asn)
    engine.run()
    return engine


@given(world_and_schedule())
@settings(max_examples=40, deadline=None)
def test_random_schedule_ends_at_static_fixpoint(world):
    """Any quiescent announce/withdraw history with one surviving
    origin lands on exactly the static ``propagate()`` state, and the
    full event timeline is bit-identical across same-seed reruns."""
    graph, schedule, origin, seed = world
    graph.validate()
    engine = _run_schedule(graph, schedule, seed)
    assert engine.converged
    static = propagate(graph, origin)
    assert engine.routes() == static._routes
    assert engine.routing_table()._routes == static._routes
    rerun = _run_schedule(graph, schedule, seed)
    assert json.dumps(engine.timeline, sort_keys=True) == json.dumps(
        rerun.timeline, sort_keys=True
    )


@given(world_and_schedule())
@settings(max_examples=15, deadline=None)
def test_random_schedule_then_withdraw_all_drains(world):
    graph, schedule, origin, seed = world
    engine = _run_schedule(graph, schedule, seed)
    engine.schedule_withdraw(engine.now + 1.0, origin)
    engine.run()
    assert engine.converged
    assert engine.routes() == {}
    assert engine.origins() == ()


def test_default_prefix_is_stable():
    """Scenario artifacts embed the prefix key; keep it pinned."""
    assert DEFAULT_PREFIX == "prefix"
