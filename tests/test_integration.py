"""End-to-end integration tests across modules.

These run miniature versions of the three studies and check the
cross-setting claims the paper builds its argument on, plus bit-for-bit
determinism of every pipeline.
"""

import pytest

from repro.core import (
    AnycastCdnStudy,
    CloudTiersStudy,
    PopRoutingStudy,
    Verdict,
    render_report,
)


@pytest.fixture(scope="module")
def results(small_config):
    pop = PopRoutingStudy(seed=7, n_prefixes=50, days=1.0, topology=small_config).run()
    cdn = AnycastCdnStudy(
        seed=7, n_prefixes=50, days=1.0, requests_per_prefix=24, topology=small_config
    ).run()
    cloud = CloudTiersStudy(
        seed=7, days=3, vps_per_day=50, topology=small_config
    ).run()
    return pop, cdn, cloud


class TestPaperNarrative:
    """The paper's overarching observation, end to end: in all three
    settings performance-aware routing provides little benefit over BGP."""

    def test_setting_a_little_benefit(self, results):
        pop, _, _ = results
        assert pop.summary["frac_alternate_better_5ms"] < 0.15
        assert pop.summary["omniscient_gain_ms"] < 5.0

    def test_setting_b_anycast_good_enough(self, results):
        _, cdn, _ = results
        assert cdn.summary["frac_within_10ms_world"] > 0.5
        # Redirection is not a free win.
        assert cdn.summary["frac_improved"] < 0.6

    def test_setting_c_tiers_comparable(self, results):
        _, _, cloud = results
        # Figure 5: a real mix — neither tier dominates everywhere.
        assert cloud.summary["n_countries"] >= 5
        assert cloud.summary["goodput_ratio"] == pytest.approx(1.0, abs=0.5)

    def test_hypotheses_supported(self, results):
        pop, cdn, cloud = results
        verdicts = {
            h.hypothesis: h.verdict
            for result in results
            for h in result.hypotheses
        }
        # The central §3.1.1 mechanism must be visible in the simulation.
        assert verdicts["degrade-together (§3.1.1)"] is Verdict.SUPPORTED
        assert verdicts["direct peering does not fully explain (§3.1.2)"] in (
            Verdict.SUPPORTED,
            Verdict.INCONCLUSIVE,
        )

    def test_full_report_renders(self, results):
        report = render_report(list(results))
        assert "SUPPORTED" in report
        assert report.count("## Study") == 3


class TestDeterminism:
    def test_pop_study_deterministic(self, small_config):
        a = PopRoutingStudy(seed=9, n_prefixes=25, days=0.25, topology=small_config).run()
        b = PopRoutingStudy(seed=9, n_prefixes=25, days=0.25, topology=small_config).run()
        assert a.summary == b.summary

    def test_cdn_study_deterministic(self, small_config):
        a = AnycastCdnStudy(
            seed=9, n_prefixes=25, days=0.5, requests_per_prefix=12, topology=small_config
        ).run()
        b = AnycastCdnStudy(
            seed=9, n_prefixes=25, days=0.5, requests_per_prefix=12, topology=small_config
        ).run()
        assert a.summary == b.summary

    def test_cloud_study_deterministic(self, small_config):
        a = CloudTiersStudy(seed=9, days=2, vps_per_day=30, topology=small_config).run()
        b = CloudTiersStudy(seed=9, days=2, vps_per_day=30, topology=small_config).run()
        assert a.summary == b.summary

    def test_seed_changes_results(self, small_config):
        a = PopRoutingStudy(seed=1, n_prefixes=25, days=0.25, topology=small_config).run()
        b = PopRoutingStudy(seed=2, n_prefixes=25, days=0.25, topology=small_config).run()
        assert a.summary != b.summary
