"""Property-based accuracy and determinism contracts of the stream plane.

These pin the documented guarantees of ``repro.stream``:

* the centroid sketch's median stays within ``RANK_TOLERANCE`` of the
  exact median *in rank space* on arbitrary finite inputs;
* P² tracks the median of the workload the subsystem actually sees
  (exponential MinRTT residuals on a floor) within a value tolerance;
* merging sketches agrees with one sketch over the concatenation, again
  in rank space — the property that makes shard fan-out sound;
* serialization round trips are byte-identical, so snapshots can be
  compared with ``==`` across process and checkpoint boundaries.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.stream import RANK_TOLERANCE, CentroidSketch, P2Sketch, make_sketch

#: Finite measurement-like values (RTTs in ms, wide but bounded).
samples = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, width=32),
    min_size=1,
    max_size=400,
)


def rank_error(values: np.ndarray, estimate: float) -> float:
    """Rank-space distance of ``estimate`` from the median of ``values``.

    With ties an estimate occupies a rank *interval*
    ``[count(< est), count(<= est)] / n`` — the exact median of any
    multiset covers rank 0.5 exactly, so its error is 0 and the bound
    stays meaningful on tie-heavy inputs.
    """
    lo = np.count_nonzero(values < estimate) / values.size
    hi = np.count_nonzero(values <= estimate) / values.size
    return max(0.0, lo - 0.5, 0.5 - hi)


class TestCentroidAccuracy:
    @given(samples)
    @settings(max_examples=200, deadline=None)
    def test_median_within_rank_tolerance(self, values):
        arr = np.asarray(values)
        sketch = CentroidSketch()
        sketch.update_batch(arr)
        assert rank_error(arr, sketch.quantile(0.5)) <= RANK_TOLERANCE

    @given(samples)
    @settings(max_examples=100, deadline=None)
    def test_estimates_stay_in_range(self, values):
        arr = np.asarray(values)
        sketch = CentroidSketch()
        sketch.update_batch(arr)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert arr.min() <= sketch.quantile(q) <= arr.max()

    @given(samples, samples)
    @settings(max_examples=100, deadline=None)
    def test_merge_agrees_with_concat(self, left, right):
        """merge(a, b) ≈ sketch(concat(a, b)) in rank space.

        Both sides carry sketch error, so the bound is the sum of the
        two one-sided tolerances.
        """
        both = np.asarray(left + right)
        merged = CentroidSketch()
        merged.update_batch(np.asarray(left))
        other = CentroidSketch()
        other.update_batch(np.asarray(right))
        merged.merge(other)
        single = CentroidSketch()
        single.update_batch(both)
        assert merged.count == single.count == both.size
        assert rank_error(both, merged.quantile(0.5)) <= 2 * RANK_TOLERANCE

    @given(samples, st.integers(min_value=1, max_value=7))
    @settings(max_examples=100, deadline=None)
    def test_chunking_is_irrelevant_to_the_bound(self, values, n_chunks):
        """Feeding in any chunking keeps the documented bound."""
        arr = np.asarray(values)
        sketch = CentroidSketch()
        for chunk in np.array_split(arr, n_chunks):
            sketch.update_batch(chunk)
        assert sketch.count == arr.size
        assert rank_error(arr, sketch.quantile(0.5)) <= RANK_TOLERANCE


class TestP2Workload:
    """P² on the workload it meets in production: exponential residuals
    over a per-pair floor (``MinRTT = floor + Exp(scale)``)."""

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_median_tracks_exponential_workload(self, seed, floor, scale):
        rng = np.random.default_rng(seed)
        values = floor + rng.exponential(scale, size=3_000)
        sketch = P2Sketch()
        sketch.update_batch(values)
        exact = float(np.median(values))
        # Value tolerance scaled to the residual spread: sampling error
        # of the true median is ~scale/sqrt(n); the marker curve adds a
        # few multiples on adversarial seeds.
        assert abs(sketch.quantile(0.5) - exact) <= 0.25 * scale

    @given(samples)
    @settings(max_examples=100, deadline=None)
    def test_estimates_stay_in_range(self, values):
        arr = np.asarray(values)
        sketch = P2Sketch()
        sketch.update_batch(arr)
        assert arr.min() <= sketch.quantile(0.5) <= arr.max()


class TestSerializationProperties:
    @given(samples, st.sampled_from(["centroid", "p2"]))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_byte_identical(self, values, kind):
        from repro.stream import sketch_from_json

        sketch = make_sketch(kind)
        sketch.update_batch(np.asarray(values))
        text = sketch.to_json()
        restored = sketch_from_json(text)
        assert restored.to_json() == text
        assert restored.quantile(0.5) == sketch.quantile(0.5)
