"""Tests for Premium/Standard tier routing state."""

import pytest

from repro.cloudtiers import CloudDeployment, Tier


@pytest.fixture(scope="module")
def deployment(small_internet):
    return CloudDeployment(small_internet)


class TestTables:
    def test_premium_announced_everywhere(self, deployment):
        assert deployment.premium_table.origin_cities is None

    def test_standard_scoped_to_dc(self, deployment, small_internet):
        assert deployment.standard_table.origin_cities == frozenset(
            {small_internet.dc_pop.city}
        )

    def test_table_selector(self, deployment):
        assert deployment.table(Tier.PREMIUM) is deployment.premium_table
        assert deployment.table(Tier.STANDARD) is deployment.standard_table


class TestPaths:
    def test_both_tiers_reach_dc(self, deployment, small_internet):
        eyeball = small_internet.graph.get(small_internet.eyeball_asns[0])
        for tier in Tier:
            path = deployment.path(tier, eyeball.asn, eyeball.home_city)
            assert path.as_path[-1] == small_internet.provider_asn

    def test_standard_enters_at_dc(self, deployment, small_internet):
        """Standard-tier traffic can only enter the provider at the DC."""
        dc_city = small_internet.dc_pop.city
        for asn in small_internet.eyeball_asns[:15]:
            eyeball = small_internet.graph.get(asn)
            path = deployment.path(Tier.STANDARD, asn, eyeball.home_city)
            assert path.ingress_city == dc_city

    def test_premium_ingress_nearer_than_standard(self, deployment, small_internet):
        """On (weighted) average, Premium enters near the client."""
        from repro.geo import great_circle_km

        premium_near = 0
        total = 0
        dc_city = small_internet.dc_pop.city
        for asn in small_internet.eyeball_asns[:30]:
            eyeball = small_internet.graph.get(asn)
            if great_circle_km(eyeball.home_city.location, dc_city.location) < 2000:
                continue  # near the DC both tiers enter locally
            premium = deployment.path(Tier.PREMIUM, asn, eyeball.home_city)
            d_premium = great_circle_km(
                eyeball.home_city.location, premium.ingress_city.location
            )
            d_standard = great_circle_km(
                eyeball.home_city.location, dc_city.location
            )
            total += 1
            if d_premium < d_standard:
                premium_near += 1
        assert total > 0
        assert premium_near / total > 0.8


class TestDirectnessFilter:
    def test_peered_eyeball_direct_on_premium(self, deployment, small_internet):
        peers = [
            asn
            for asn in small_internet.graph.peers(small_internet.provider_asn)
            if asn in set(small_internet.eyeball_asns)
        ]
        assert peers, "small internet should have provider-eyeball peerings"
        direct = [deployment.enters_directly(Tier.PREMIUM, asn) for asn in peers]
        assert any(direct)

    def test_standard_rarely_direct(self, deployment, small_internet):
        """Standard announcements are DC-scoped; only ASes interconnecting
        at the DC city can be direct."""
        direct = [
            deployment.enters_directly(Tier.STANDARD, asn)
            for asn in small_internet.eyeball_asns
        ]
        assert sum(bool(d) for d in direct) <= len(direct) * 0.2

    def test_none_for_unreachable(self, small_config):
        """An eyeball cut off from the graph has no route on either tier."""
        from repro.topology import build_internet
        from repro.cloudtiers import CloudDeployment as Deployment

        internet = build_internet(small_config)
        victim = internet.eyeball_asns[0]
        for neighbor in list(internet.graph.neighbors(victim)):
            internet.graph.remove_link(victim, neighbor)
        deployment = Deployment(internet)
        assert deployment.enters_directly(Tier.PREMIUM, victim) is None
        assert deployment.enters_directly(Tier.STANDARD, victim) is None
