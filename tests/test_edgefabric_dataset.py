"""Tests for the windowed egress dataset container."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.bgp import RouteClass
from repro.edgefabric import EgressDataset, MeasurementConfig, run_measurement, window_times
from repro.workloads import generate_client_prefixes


@pytest.fixture(scope="module")
def dataset(small_internet):
    prefixes = generate_client_prefixes(small_internet, 40, seed=3)
    return run_measurement(
        small_internet, prefixes, MeasurementConfig(days=0.5, seed=3)
    )


class TestWindowTimes:
    def test_fifteen_minute_windows(self):
        times = window_times(1.0, 15.0)
        assert times.size == 96
        assert times[1] - times[0] == pytest.approx(0.25)

    def test_invalid_args(self):
        with pytest.raises(AnalysisError):
            window_times(0, 15.0)
        with pytest.raises(AnalysisError):
            window_times(1.0, 0)


class TestDatasetShape:
    def test_aligned_shapes(self, dataset):
        assert dataset.medians.shape == (
            dataset.n_pairs,
            dataset.n_windows,
            dataset.max_routes,
        )
        assert dataset.ci_half.shape == dataset.medians.shape
        assert dataset.volumes.shape == (dataset.n_pairs, dataset.n_windows)

    def test_missing_routes_are_nan(self, dataset):
        for i, pair in enumerate(dataset.pairs):
            measured = dataset.medians[i, 0]
            for j in range(dataset.max_routes):
                if j < pair.n_routes:
                    assert not np.isnan(measured[j])
                else:
                    assert np.isnan(measured[j])

    def test_every_pair_has_alternates(self, dataset):
        assert dataset.pairs_with_alternates().all()

    def test_shape_validation(self, dataset):
        with pytest.raises(AnalysisError):
            EgressDataset(
                pairs=dataset.pairs,
                times_h=dataset.times_h,
                medians=dataset.medians[:, :, :1],
                ci_half=dataset.ci_half,
                volumes=dataset.volumes,
                max_routes=dataset.max_routes,
            )


class TestClassAccessors:
    def test_route_class_matrix(self, dataset):
        matrix = dataset.route_class_matrix()
        assert matrix.shape == (dataset.n_pairs, dataset.max_routes)
        for i, pair in enumerate(dataset.pairs):
            for j, route in enumerate(pair.routes):
                assert matrix[i, j] is route.route_class

    def test_class_best_medians(self, dataset):
        transit = dataset.class_best_medians(RouteClass.TRANSIT)
        assert transit.shape == (dataset.n_pairs, dataset.n_windows)
        for i, pair in enumerate(dataset.pairs):
            has_transit = any(
                r.route_class is RouteClass.TRANSIT for r in pair.routes
            )
            if has_transit:
                assert not np.isnan(transit[i]).all()
            else:
                assert np.isnan(transit[i]).all()

    def test_class_best_is_minimum(self, dataset):
        transit = dataset.class_best_medians(RouteClass.TRANSIT)
        for i, pair in enumerate(dataset.pairs):
            idx = [
                j
                for j, r in enumerate(pair.routes)
                if r.route_class is RouteClass.TRANSIT
            ]
            if not idx:
                continue
            expected = np.nanmin(dataset.medians[i][:, idx], axis=1)
            assert transit[i] == pytest.approx(expected, nan_ok=True)
