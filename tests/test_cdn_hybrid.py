"""Tests for the hybrid (confidence-gated) redirection policy."""

import pytest

from repro.errors import AnalysisError
from repro.cdn import (
    BeaconConfig,
    CdnDeployment,
    redirection_improvement,
    run_beacon_campaign,
    train_hybrid_policy,
    train_redirection_policy,
)
from repro.cdn.dns_redirection import ANYCAST


@pytest.fixture(scope="module")
def dataset(small_internet, small_prefixes):
    deployment = CdnDeployment(small_internet)
    return run_beacon_campaign(
        deployment,
        small_prefixes,
        BeaconConfig(days=2.0, requests_per_prefix=32, seed=6),
    )


class TestHybridPolicy:
    def test_covers_all_resolvers(self, dataset):
        policy = train_hybrid_policy(dataset)
        assert set(policy.choices) == {p.ldns for p in dataset.prefixes}

    def test_more_conservative_than_plain(self, dataset):
        plain = train_redirection_policy(dataset, margin_ms=0.5, max_train_samples=4)
        hybrid = train_hybrid_policy(dataset)
        assert hybrid.frac_redirected <= plain.frac_redirected

    def test_hurts_less_than_plain(self, dataset):
        """The §4 design goal: keep the improvement, drop the regressions."""
        plain = train_redirection_policy(dataset, margin_ms=0.5, max_train_samples=4)
        hybrid = train_hybrid_policy(dataset)
        plain_result = redirection_improvement(dataset, plain)
        hybrid_result = redirection_improvement(dataset, hybrid)
        assert hybrid_result.frac_hurt <= plain_result.frac_hurt + 1e-9

    def test_still_fixes_broken_catchments(self, dataset):
        """Confidence gating must not give up the big, consistent wins."""
        import numpy as np

        policy = train_hybrid_policy(dataset)
        any_redirect = any(c != ANYCAST for c in policy.choices.values())
        # There are pathological catchments in this dataset (gap > 100 ms);
        # the hybrid should catch at least some.
        gaps = np.nanmedian(
            dataset.anycast_rtt - dataset.best_nearby_unicast(), axis=1
        )
        if (gaps > 100.0).any():
            assert any_redirect

    def test_perfect_consistency_requirement(self, dataset):
        strict = train_hybrid_policy(dataset, consistency=1.0, margin_ms=50.0)
        loose = train_hybrid_policy(dataset, consistency=0.5, margin_ms=1.0)
        assert strict.frac_redirected <= loose.frac_redirected

    def test_validation(self, dataset):
        with pytest.raises(AnalysisError):
            train_hybrid_policy(dataset, train_fraction=1.5)
        with pytest.raises(AnalysisError):
            train_hybrid_policy(dataset, consistency=0.0)
        with pytest.raises(AnalysisError):
            train_hybrid_policy(dataset, max_train_samples=0)
