"""Tests for topology summary metrics."""

import pytest

from repro.topology import topology_summary


@pytest.fixture(scope="module")
def summary(small_internet):
    return topology_summary(small_internet)


class TestTopologySummary:
    def test_counts_consistent(self, summary, small_internet):
        assert summary.n_ases == len(small_internet.graph)
        assert summary.n_links == sum(1 for _ in small_internet.graph.links())
        assert summary.n_links == summary.n_customer_links + summary.n_peer_links
        assert summary.n_peer_links == (
            summary.n_private_peerings + summary.n_public_peerings
        )

    def test_degrees(self, summary):
        assert 0 < summary.mean_degree <= summary.max_degree
        assert summary.provider_degree <= summary.max_degree
        assert summary.provider_degree == (
            summary.provider_peers + summary.provider_transits
        )

    def test_hierarchy_shape(self, summary):
        """Tier-1 cones dominate transit cones, as on the real Internet."""
        assert summary.median_cone_tier1 > summary.median_cone_transit
        assert summary.median_cone_transit >= 1.0

    def test_interconnect_density(self, summary):
        assert summary.mean_interconnects_per_link >= 1.0

    def test_render(self, summary):
        text = summary.render()
        assert "ASes" in text
        assert "provider degree" in text
        assert str(summary.n_ases) in text
