"""Tests for the fault-injection package: plans, injectors, domain models."""


import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FrontEndDrain,
    InjectedFault,
    ProbeLoss,
    VantagePointChurn,
    apply_fault,
    corrupt_file,
    maybe_inject,
    parse_fault_spec,
)
from repro.runner import JobSpec
from repro.runner.spec import canonicalize

HASHES = [f"{i:064x}" for i in range(400)]


class TestFaultPlan:
    def test_inert_by_default(self):
        plan = FaultPlan()
        assert not plan.active
        assert all(plan.decide(h, 1) is None for h in HASHES[:50])

    @pytest.mark.parametrize("field", ["p_timeout", "p_crash", "p_error", "p_slow", "p_corrupt"])
    def test_probability_bounds_enforced(self, field):
        with pytest.raises(FaultError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(FaultError):
            FaultPlan(**{field: -0.1})

    def test_attempt_probabilities_must_sum_to_one_or_less(self):
        with pytest.raises(FaultError, match="sum"):
            FaultPlan(p_timeout=0.5, p_crash=0.3, p_error=0.3)
        # p_corrupt is per-spec, outside the per-attempt walk.
        FaultPlan(p_timeout=0.5, p_crash=0.5, p_corrupt=1.0)

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=3, p_timeout=0.2, p_crash=0.2, p_error=0.2, p_slow=0.2)
        again = FaultPlan(seed=3, p_timeout=0.2, p_crash=0.2, p_error=0.2, p_slow=0.2)
        decisions = [plan.decide(h, 1) for h in HASHES]
        assert decisions == [again.decide(h, 1) for h in HASHES]
        assert any(d is not None for d in decisions)

    def test_seed_changes_decisions(self):
        a = FaultPlan(seed=0, p_error=0.5)
        b = FaultPlan(seed=1, p_error=0.5)
        assert [a.decide(h, 1) for h in HASHES] != [b.decide(h, 1) for h in HASHES]

    def test_rates_roughly_match_probabilities(self):
        plan = FaultPlan(seed=7, p_error=0.3)
        hits = sum(plan.decide(h, 1) == "error" for h in HASHES)
        assert 0.2 < hits / len(HASHES) < 0.4

    def test_max_faulty_attempts_caps_torment(self):
        plan = FaultPlan(seed=1, p_error=1.0, max_faulty_attempts=2)
        for h in HASHES[:20]:
            assert plan.decide(h, 1) == "error"
            assert plan.decide(h, 2) == "error"
            assert plan.decide(h, 3) is None

    def test_zero_cap_means_unbounded(self):
        plan = FaultPlan(seed=1, p_error=1.0, max_faulty_attempts=0)
        assert plan.decide(HASHES[0], 50) == "error"

    def test_attempt_must_be_positive(self):
        with pytest.raises(FaultError):
            FaultPlan(p_error=1.0).decide(HASHES[0], 0)

    def test_every_kind_reachable(self):
        plan = FaultPlan(
            seed=5, p_timeout=0.25, p_crash=0.25, p_error=0.25, p_slow=0.25
        )
        seen = {plan.decide(h, 1) for h in HASHES}
        assert set(FAULT_KINDS) <= seen

    def test_decide_corrupt_deterministic_and_per_spec(self):
        plan = FaultPlan(seed=9, p_corrupt=0.5)
        flags = [plan.decide_corrupt(h) for h in HASHES]
        assert flags == [plan.decide_corrupt(h) for h in HASHES]
        assert any(flags) and not all(flags)

    def test_describe_names_active_kinds(self):
        text = FaultPlan(seed=2, p_crash=0.1, p_corrupt=0.3).describe()
        assert "crash=0.1" in text and "corrupt=0.3" in text

    def test_plan_is_picklable_and_canonicalizable(self):
        import pickle

        plan = FaultPlan(seed=2, p_crash=0.1)
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert canonicalize(plan)["__dataclass__"].endswith(":FaultPlan")


class TestParseFaultSpec:
    def test_parses_probabilities_and_tuning(self):
        plan = parse_fault_spec(
            "crash=0.2, timeout=0.1, hang_s=3.5, max_attempts=4", seed=6
        )
        assert plan == FaultPlan(
            seed=6, p_crash=0.2, p_timeout=0.1, hang_s=3.5, max_faulty_attempts=4
        )

    def test_inline_seed_overrides_argument(self):
        assert parse_fault_spec("seed=9,error=0.5", seed=1).seed == 9

    @pytest.mark.parametrize("bad", ["nope=1", "crash", "crash=x", "timeout=2.0"])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultError):
            parse_fault_spec(bad)

    def test_empty_spec_is_inert(self):
        assert not parse_fault_spec("").active


class TestInjectors:
    def test_error_fault_raises_injected_fault(self):
        plan = FaultPlan(seed=1, p_error=1.0)
        with pytest.raises(InjectedFault):
            apply_fault("error", plan, HASHES[0], 1)

    def test_slow_fault_sleeps_then_returns(self):
        import time

        plan = FaultPlan(seed=1, p_slow=1.0, slow_s=0.05)
        start = time.perf_counter()
        apply_fault("slow", plan, HASHES[0], 1)
        assert time.perf_counter() - start >= 0.04

    def test_timeout_fault_hangs_then_raises(self):
        plan = FaultPlan(seed=1, p_timeout=1.0, hang_s=0.05)
        with pytest.raises(InjectedFault, match="timeout"):
            apply_fault("timeout", plan, HASHES[0], 1)

    def test_maybe_inject_none_plan_is_noop(self):
        maybe_inject(None, HASHES[0], 1)

    def test_maybe_inject_respects_decision(self):
        plan = FaultPlan(seed=1, p_error=1.0, max_faulty_attempts=1)
        with pytest.raises(InjectedFault):
            maybe_inject(plan, HASHES[0], 1)
        maybe_inject(plan, HASHES[0], 2)  # past the cap: clean

    def test_injected_fault_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(InjectedFault, ReproError)

    def test_corrupt_file_garbles_but_keeps_file(self, tmp_path):
        target = tmp_path / "entry.json"
        target.write_text('{"ok": true, "padding": "' + "x" * 200 + '"}')
        assert corrupt_file(target)
        assert target.exists()
        import json

        with pytest.raises(json.JSONDecodeError):
            json.loads(target.read_text(errors="replace"))

    def test_corrupt_file_missing_is_false(self, tmp_path):
        assert not corrupt_file(tmp_path / "absent.json")


class TestVantagePointChurn:
    def test_deterministic(self):
        churn = VantagePointChurn(daily_rate=0.3, seed=4)
        flags = [churn.available(d, f"vp-{i}") for d in range(5) for i in range(40)]
        again = VantagePointChurn(daily_rate=0.3, seed=4)
        assert flags == [
            again.available(d, f"vp-{i}") for d in range(5) for i in range(40)
        ]

    def test_rate_zero_never_churns(self):
        churn = VantagePointChurn(daily_rate=0.0)
        assert all(churn.available(0, f"vp-{i}") for i in range(50))

    def test_rate_roughly_respected(self):
        churn = VantagePointChurn(daily_rate=0.25, seed=1)
        down = sum(
            not churn.available(d, f"vp-{i}") for d in range(10) for i in range(60)
        )
        assert 0.15 < down / 600 < 0.35

    def test_invalid_rate_rejected(self):
        with pytest.raises(FaultError):
            VantagePointChurn(daily_rate=1.5)


class TestFrontEndDrain:
    def test_drain_windows_have_the_configured_length(self):
        drain = FrontEndDrain(daily_rate=1.0, drain_hours=4.0, seed=2)
        times = np.linspace(0.0, 24.0, 2401)  # 36-second resolution
        mask = drain.drained_mask("iad", times)
        hours = mask.sum() * (times[1] - times[0])
        assert 3.8 <= hours <= 4.2

    def test_rate_zero_never_drains(self):
        drain = FrontEndDrain(daily_rate=0.0)
        assert not drain.drained_mask("iad", np.linspace(0, 72, 100)).any()

    def test_scalar_and_mask_agree(self):
        drain = FrontEndDrain(daily_rate=1.0, drain_hours=6.0, seed=3)
        times = np.linspace(0.0, 48.0, 97)
        mask = drain.drained_mask("lhr", times)
        assert [drain.drained("lhr", float(t)) for t in times] == list(mask)

    def test_codes_drain_independently(self):
        drain = FrontEndDrain(daily_rate=0.5, seed=5)
        times = np.linspace(0.0, 24.0 * 20, 400)
        a = drain.drained_mask("iad", times)
        b = drain.drained_mask("sin", times)
        assert not np.array_equal(a, b)

    def test_invalid_params_rejected(self):
        with pytest.raises(FaultError):
            FrontEndDrain(drain_hours=0.0)
        with pytest.raises(FaultError):
            FrontEndDrain(drain_hours=30.0)


class TestProbeLoss:
    def test_mask_shape_and_determinism(self):
        loss = ProbeLoss(rate=0.1, seed=6)
        keys = [f"iad:pfx-{i}" for i in range(8)]
        mask = loss.lost_mask(keys, 20, 3)
        assert mask.shape == (8, 20, 3)
        assert np.array_equal(mask, ProbeLoss(rate=0.1, seed=6).lost_mask(keys, 20, 3))

    def test_losses_keyed_by_pair_not_position(self):
        loss = ProbeLoss(rate=0.2, seed=1)
        keys = [f"iad:pfx-{i}" for i in range(6)]
        full = loss.lost_mask(keys, 10, 3)
        reordered = loss.lost_mask(keys[::-1], 10, 3)
        assert np.array_equal(full[::-1], reordered)

    def test_rate_zero_loses_nothing(self):
        assert not ProbeLoss(rate=0.0).lost_mask(["a"], 50, 3).any()

    def test_invalid_rate_rejected(self):
        with pytest.raises(FaultError):
            ProbeLoss(rate=-0.1)


class TestPlatformAttribution:
    """The circuit breaker keys on JobSpec.platform."""

    @pytest.mark.parametrize(
        "study, expected",
        [
            ("repro.core.study:PopRoutingStudy", "edgefabric"),
            ("repro.core.study:PeeringReductionStudy", "edgefabric"),
            ("repro.core.study:AnycastCdnStudy", "cdn"),
            ("repro.core.study:CloudTiersStudy", "cloudtiers"),
        ],
    )
    def test_paper_studies_declare_platforms(self, study, expected):
        assert JobSpec(study=study).platform == expected

    def test_module_path_fallback(self):
        # An unresolvable study falls back to parsing the module path.
        assert JobSpec(study="repro.edgefabric.nosuch:X").platform == "edgefabric"
        assert JobSpec(study="outside.thing:X").platform == "outside"

    def test_platform_is_not_part_of_the_content_hash(self):
        spec = JobSpec(study="repro.core.study:PopRoutingStudy", seed=1)
        digest = spec.content_hash
        _ = spec.platform
        assert spec.content_hash == digest
