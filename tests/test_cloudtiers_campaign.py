"""Tests for the tier-comparison campaign driver."""

import pytest

from repro.errors import MeasurementError
from repro.cloudtiers import (
    CampaignConfig,
    CloudDeployment,
    SpeedcheckerPlatform,
    Tier,
    run_campaign,
)


@pytest.fixture(scope="module")
def deployment(small_internet):
    return CloudDeployment(small_internet)


@pytest.fixture(scope="module")
def dataset(deployment):
    platform = SpeedcheckerPlatform(deployment, seed=4)
    return run_campaign(
        platform, CampaignConfig(days=3, vps_per_day=40, rounds_per_day=4, seed=4)
    )


class TestConfigValidation:
    def test_defaults(self):
        CampaignConfig()

    def test_positive_params(self):
        with pytest.raises(MeasurementError):
            CampaignConfig(days=0)
        with pytest.raises(MeasurementError):
            CampaignConfig(rounds_per_day=0)


class TestCampaign:
    def test_records_cover_both_tiers(self, dataset):
        for record in dataset.records:
            assert set(record.median_ms) == {Tier.PREMIUM, Tier.STANDARD}
            assert all(v > 0 for v in record.median_ms.values())

    def test_records_reference_known_vps(self, dataset):
        for record in dataset.records:
            assert record.vp_id in dataset.vps

    def test_traceroutes_collected_once_per_vp_tier(self, dataset):
        for (vp_id, tier), tr in dataset.traceroutes.items():
            assert tr.vp_id == vp_id
            assert tr.tier == tier

    def test_eligible_subset_of_vps(self, dataset):
        assert dataset.eligible <= set(dataset.vps)

    def test_eligibility_criterion(self, dataset, deployment):
        """Eligible = direct on Premium, indirect on Standard."""
        for vp_id in dataset.eligible:
            vp = dataset.vps[vp_id]
            assert deployment.enters_directly(Tier.PREMIUM, vp.asn) is True
            assert deployment.enters_directly(Tier.STANDARD, vp.asn) is False

    def test_eligible_records_filtered(self, dataset):
        eligible_records = dataset.eligible_records()
        assert all(r.vp_id in dataset.eligible for r in eligible_records)
        assert len(eligible_records) <= len(dataset.records)

    def test_panel_rotates_across_days(self, dataset):
        by_day = {}
        for record in dataset.records:
            by_day.setdefault(record.day, set()).add(record.vp_id)
        days = sorted(by_day)
        assert len(days) >= 2
        assert by_day[days[0]] != by_day[days[1]]

    def test_deterministic(self, deployment):
        cfg = CampaignConfig(days=1, vps_per_day=15, rounds_per_day=2, seed=8)
        a = run_campaign(SpeedcheckerPlatform(deployment, seed=8), cfg)
        b = run_campaign(SpeedcheckerPlatform(deployment, seed=8), cfg)
        assert [(r.vp_id, r.day, r.median_ms) for r in a.records] == [
            (r.vp_id, r.day, r.median_ms) for r in b.records
        ]
