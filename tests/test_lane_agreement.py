"""Scalar-vs-vectorized lane agreement across the measurement pipelines.

Every fast lane ships with an escape hatch (``fast=False``) running the
original scalar code; these tests pin down the agreement contract of
each pair:

* **Bit-identical** where the computation is deterministic or consumes
  the same RNG stream positions: episode extraction, CDN redirection
  training, the cloudtiers campaign, edgefabric CI half-widths.
* **Documented tolerance** where the fast lane reorders floating-point
  work (catchment distances: numpy vs ``math`` trig round-off) or
  batches RNG draws (edgefabric medians: same noise distribution,
  different draw order — statistics agree, individual samples do not).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bgp import propagate, propagate_many
from repro.cdn import CdnDeployment
from repro.cdn.catchment import catchment_map
from repro.cdn.dns_redirection import train_redirection_policy
from repro.cdn.measurement import BeaconConfig, run_beacon_campaign
from repro.cloudtiers import (
    CampaignConfig,
    CloudDeployment,
    SpeedcheckerPlatform,
    run_campaign,
)
from repro.edgefabric.analysis import bgp_vs_best_alternate
from repro.edgefabric.episodes import extract_episodes
from repro.edgefabric.routes import tables_for_destinations
from repro.topology import TopologyConfig, build_internet
from repro.edgefabric.sampler import (
    MeasurementConfig,
    plan_measurement,
    run_measurement,
    synthesize_dataset,
)

SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def egress_plan(small_internet, small_prefixes):
    config = MeasurementConfig(days=2.0)
    return plan_measurement(small_internet, small_prefixes, config)


class TestEdgefabricLanes:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fig1_statistics_agree(self, egress_plan, seed):
        """Fig-1 fractions agree between lanes at the statistic level.

        The fast lane batches its noise draws, so individual medians
        differ; the Figure 1 statistics — fractions over ~10k weighted
        pair-windows — must agree within sampling noise.
        """
        config = MeasurementConfig(days=2.0, seed=seed)
        slow = bgp_vs_best_alternate(
            synthesize_dataset(egress_plan, config, fast=False)
        )
        fast = bgp_vs_best_alternate(
            synthesize_dataset(egress_plan, config, fast=True)
        )
        assert fast.frac_alternate_better_5ms == pytest.approx(
            slow.frac_alternate_better_5ms, abs=0.05
        )
        assert fast.frac_bgp_within_1ms == pytest.approx(
            slow.frac_bgp_within_1ms, abs=0.05
        )
        assert fast.frac_bgp_strictly_better == pytest.approx(
            slow.frac_bgp_strictly_better, abs=0.05
        )

    def test_structure_and_ci_bit_identical(self, egress_plan):
        """Everything deterministic matches exactly between the lanes.

        The NaN mask (which pair-window-route slots were measured) and
        the CI half-widths depend only on the plan and session counts,
        not on noise draws.
        """
        config = MeasurementConfig(days=2.0, seed=0)
        slow = synthesize_dataset(egress_plan, config, fast=False)
        fast = synthesize_dataset(egress_plan, config, fast=True)
        assert np.array_equal(np.isnan(slow.medians), np.isnan(fast.medians))
        assert np.array_equal(slow.ci_half, fast.ci_half, equal_nan=True)
        assert np.array_equal(slow.volumes, fast.volumes)

    def test_episode_extraction_bit_identical(self, egress_plan):
        config = MeasurementConfig(days=2.0, seed=1)
        dataset = synthesize_dataset(egress_plan, config)
        assert extract_episodes(dataset, fast=True) == extract_episodes(
            dataset, fast=False
        )

    def test_run_measurement_composes_both_lanes(
        self, small_internet, small_prefixes
    ):
        """The end-to-end entry point inherits synthesize's contract.

        ``run_measurement`` is plan + synthesis; the deterministic parts
        of its output (measurement mask, CI half-widths, volumes) must
        be bit-identical across lanes, exactly like
        :meth:`test_structure_and_ci_bit_identical` but through the
        public composition.
        """
        config = MeasurementConfig(days=1.0, seed=2)
        slow = run_measurement(
            small_internet, small_prefixes, config, fast=False
        )
        fast = run_measurement(
            small_internet, small_prefixes, config, fast=True
        )
        assert np.array_equal(np.isnan(slow.medians), np.isnan(fast.medians))
        assert np.array_equal(slow.ci_half, fast.ci_half, equal_nan=True)
        assert np.array_equal(slow.volumes, fast.volumes)


class TestCdnLanes:
    @pytest.fixture(scope="class")
    def deployment(self, small_internet):
        return CdnDeployment(small_internet)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_catchment_fractions_agree(
        self, deployment, small_prefixes, seed
    ):
        """Catchment shares/fractions exact; distances to round-off.

        The seed perturbs prefix weights through rotation of the list,
        exercising different per-PoP groupings from one topology.
        """
        rotated = small_prefixes[seed:] + small_prefixes[:seed]
        slow = catchment_map(deployment, rotated, fast=False)
        fast = catchment_map(deployment, rotated, fast=True)
        assert fast.frac_unreachable == slow.frac_unreachable
        assert fast.global_frac_misdirected == slow.global_frac_misdirected
        assert fast.global_median_km == pytest.approx(
            slow.global_median_km, rel=1e-9
        )
        assert len(fast.entries) == len(slow.entries)
        for fe, se in zip(fast.entries, slow.entries):
            assert fe.pop_code == se.pop_code
            assert fe.traffic_share == se.traffic_share
            assert fe.n_prefixes == se.n_prefixes
            assert fe.frac_misdirected == se.frac_misdirected
            assert fe.median_client_km == pytest.approx(
                se.median_client_km, rel=1e-9
            )
            assert fe.p90_client_km == pytest.approx(
                se.p90_client_km, rel=1e-9
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_redirection_policy_bit_identical(
        self, deployment, small_prefixes, seed
    ):
        """Both lanes pool the same sample multisets, so the trained
        policy — every per-LDNS choice and ECS override — is identical."""
        dataset = run_beacon_campaign(
            deployment, small_prefixes, BeaconConfig(seed=seed)
        )
        resolvers = {p.ldns for p in dataset.prefixes if p.ldns}
        slow = train_redirection_policy(
            dataset, ecs_resolvers=resolvers, fast=False
        )
        fast = train_redirection_policy(
            dataset, ecs_resolvers=resolvers, fast=True
        )
        assert dict(fast.choices) == dict(slow.choices)
        assert dict(fast.prefix_choices) == dict(slow.prefix_choices)


class TestStreamingLanes:
    """Sketch-backed ``streaming=True`` lanes against their batch twins.

    The streaming lane replaces stored-sample medians with mergeable
    quantile sketches (:mod:`repro.stream`).  Deterministic structure —
    NaN masks, CI half-widths, volumes — must stay bit-identical; the
    medians are estimates from an independent session-noise stream and
    agree at the statistic level within the documented tolerance
    (``docs/streaming.md``).
    """

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fig1_statistics_agree(self, egress_plan, seed):
        config = MeasurementConfig(days=2.0, seed=seed)
        batch = bgp_vs_best_alternate(
            synthesize_dataset(egress_plan, config, fast=True)
        )
        streaming = bgp_vs_best_alternate(
            synthesize_dataset(egress_plan, config, streaming=True)
        )
        assert streaming.frac_alternate_better_5ms == pytest.approx(
            batch.frac_alternate_better_5ms, abs=0.05
        )
        assert streaming.frac_bgp_within_1ms == pytest.approx(
            batch.frac_bgp_within_1ms, abs=0.05
        )
        assert streaming.frac_bgp_strictly_better == pytest.approx(
            batch.frac_bgp_strictly_better, abs=0.05
        )

    def test_structure_and_ci_bit_identical(self, egress_plan):
        """The CI plane is shared code (``_ci_half_grid``), so it cannot
        drift between the batch and streaming lanes; the measurement
        mask and volumes are plan-determined."""
        config = MeasurementConfig(days=2.0, seed=0)
        batch = synthesize_dataset(egress_plan, config, fast=True)
        streaming = synthesize_dataset(egress_plan, config, streaming=True)
        assert np.array_equal(
            np.isnan(batch.medians), np.isnan(streaming.medians)
        )
        assert np.array_equal(batch.ci_half, streaming.ci_half, equal_nan=True)
        assert np.array_equal(batch.volumes, streaming.volumes)

    def test_medians_close_in_value(self, egress_plan):
        """Per-cell medians: two independent samplings of the same
        session model, so differences are sampling noise around the
        same floor + ln2·scale median — well under a couple ms at the
        paper's session counts."""
        config = MeasurementConfig(days=2.0, seed=1)
        batch = synthesize_dataset(egress_plan, config, fast=True)
        streaming = synthesize_dataset(egress_plan, config, streaming=True)
        mask = ~np.isnan(batch.medians)
        diff = np.abs(batch.medians[mask] - streaming.medians[mask])
        assert float(np.median(diff)) < 1.0
        assert float(diff.max()) < 10.0

    def test_run_measurement_composes_streaming_lane(
        self, small_internet, small_prefixes
    ):
        config = MeasurementConfig(days=1.0, seed=2)
        batch = run_measurement(small_internet, small_prefixes, config)
        streaming = run_measurement(
            small_internet, small_prefixes, config, streaming=True
        )
        assert np.array_equal(
            np.isnan(batch.medians), np.isnan(streaming.medians)
        )
        assert np.array_equal(batch.ci_half, streaming.ci_half, equal_nan=True)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_redirection_policy_matches_batch(
        self, small_internet, small_prefixes, seed
    ):
        """Training pools stay far below the centroid budget on this
        fixture, where the sketch is exact up to interpolation — the
        trained policy matches the batch lanes choice for choice."""
        deployment = CdnDeployment(small_internet)
        dataset = run_beacon_campaign(
            deployment, small_prefixes, BeaconConfig(seed=seed)
        )
        resolvers = {p.ldns for p in dataset.prefixes if p.ldns}
        batch = train_redirection_policy(
            dataset, ecs_resolvers=resolvers, fast=True
        )
        streaming = train_redirection_policy(
            dataset, ecs_resolvers=resolvers, streaming=True
        )
        assert dict(streaming.choices) == dict(batch.choices)
        assert dict(streaming.prefix_choices) == dict(batch.prefix_choices)

    def test_campaign_day_medians_match_batch(self, small_internet):
        """A VP-day has ``rounds_per_day`` medians — far below the
        centroid budget — so the streaming aggregation reproduces the
        batch day medians to float precision."""
        deployment = CloudDeployment(small_internet)
        cfg = CampaignConfig(days=2, vps_per_day=20, rounds_per_day=4, seed=4)
        batch = run_campaign(SpeedcheckerPlatform(deployment, seed=4), cfg)
        streaming = run_campaign(
            SpeedcheckerPlatform(deployment, seed=4), cfg, streaming=True
        )
        assert len(batch.records) == len(streaming.records)
        for a, b in zip(batch.records, streaming.records):
            assert a.vp_id == b.vp_id and a.day == b.day
            for tier, value in a.median_ms.items():
                assert b.median_ms[tier] == pytest.approx(value, abs=1e-9)


class TestCloudtiersLanes:
    def test_campaign_bit_identical(self, small_internet):
        """Ping bursts consume the same noise-stream positions as the
        per-round calls, so the datasets match sample for sample."""
        deployment = CloudDeployment(small_internet)
        cfg = CampaignConfig(days=2, vps_per_day=25, rounds_per_day=4, seed=4)
        slow = run_campaign(
            SpeedcheckerPlatform(deployment, seed=4), cfg, fast=False
        )
        fast = run_campaign(
            SpeedcheckerPlatform(deployment, seed=4), cfg, fast=True
        )
        assert len(slow.records) == len(fast.records)
        for a, b in zip(slow.records, fast.records):
            assert a.vp_id == b.vp_id and a.day == b.day
            assert a.median_ms == b.median_ms
        assert slow.eligible == fast.eligible
        assert set(slow.traceroutes) == set(fast.traceroutes)


class TestBgpPropagationLanes:
    """The propagation fast lane is *bit-identical* to the scalar lane:
    same best route (path, pref, advertised length) at every AS, for
    every origin and every grooming variant.  Randomized topologies are
    covered by ``tests/test_properties_bgp.py``'s stability oracle,
    which also runs both lanes."""

    def test_propagate_bit_identical_all_origins(self, small_internet):
        graph = small_internet.graph
        for asys in graph.ases():
            scalar = propagate(graph, asys.asn, fast=False)
            fast = propagate(graph, asys.asn, fast=True)
            assert scalar._routes == fast._routes, f"origin {asys.asn}"

    def test_propagate_bit_identical_randomized(self):
        """Generator-randomized graphs across seeds and random origins."""
        for seed in SEEDS:
            internet = build_internet(
                TopologyConfig(seed=seed, n_tier1=3, n_transit=12, n_eyeball=30)
            )
            graph = internet.graph
            asns = [asys.asn for asys in graph.ases()]
            rng = np.random.default_rng(seed)
            for origin in rng.choice(asns, size=8, replace=False):
                origin = int(origin)
                scalar = propagate(graph, origin, fast=False)
                fast = propagate(graph, origin, fast=True)
                assert scalar._routes == fast._routes, f"origin {origin}"

    def test_propagate_grooming_bit_identical(self, small_internet):
        """Prepends, suppression, and city scoping hit the same origin
        edges in both lanes."""
        graph = small_internet.graph
        origin = small_internet.provider_asn
        neighbors = sorted(graph.neighbors(origin))
        variants = [
            dict(prepends={neighbors[0]: 3}),
            dict(suppressed=frozenset(neighbors[:2])),
            dict(
                prepends={neighbors[0]: 2, neighbors[-1]: 1},
                suppressed=frozenset({neighbors[1]}),
            ),
            dict(
                origin_cities=frozenset({small_internet.wan.pops[0].city})
            ),
        ]
        for kwargs in variants:
            scalar = propagate(graph, origin, fast=False, **kwargs)
            fast = propagate(graph, origin, fast=True, **kwargs)
            assert scalar._routes == fast._routes, kwargs

    def test_propagate_many_matches_per_origin_calls(self, small_internet):
        graph = small_internet.graph
        origins = [asys.asn for asys in graph.ases()][:10]
        batched = propagate_many(graph, origins, fast=True)
        for origin, table in zip(origins, batched):
            assert table.origin == origin
            assert table._routes == propagate(graph, origin)._routes
        scalar_batch = propagate_many(graph, origins, fast=False)
        for fast_table, scalar_table in zip(batched, scalar_batch):
            assert fast_table._routes == scalar_table._routes

    def test_tables_for_destinations_lanes_agree(self, small_internet):
        asns = [asys.asn for asys in small_internet.graph.ases()][:8]
        fast = tables_for_destinations(small_internet, asns, fast=True)
        scalar = tables_for_destinations(small_internet, asns, fast=False)
        assert set(fast) == set(scalar)
        for asn in fast:
            assert fast[asn]._routes == scalar[asn]._routes


class TestTopologyLanes:
    """build_internet(fast=True) memoizes distances; output is
    bit-identical (LANE001 pin)."""

    def test_build_internet_bit_identical(self):
        from repro.topology.serialization import internet_to_dict

        for seed in SEEDS:
            cfg = TopologyConfig(seed=seed, n_tier1=4, n_transit=16, n_eyeball=40)
            scalar = build_internet(cfg, fast=False)
            fast = build_internet(cfg, fast=True)
            assert internet_to_dict(scalar) == internet_to_dict(fast), seed

    def test_build_internet_custom_backbone_mesh(self):
        """The nearest-mesh fallback path (custom PoP set) also agrees."""
        from repro.topology.generator import DEFAULT_POP_CITIES
        from repro.topology.serialization import internet_to_dict

        cfg = TopologyConfig(
            seed=1,
            n_tier1=3,
            n_transit=8,
            n_eyeball=20,
            pop_cities=DEFAULT_POP_CITIES[:12],
            dc_pop_code=DEFAULT_POP_CITIES[0][0],
        )
        scalar = build_internet(cfg, fast=False)
        fast = build_internet(cfg, fast=True)
        assert internet_to_dict(scalar) == internet_to_dict(fast)


class TestBgpDynamicsLanes:
    """LANE001 for the event-driven engine: once the event queue drains
    after a lone announcement, the dynamics end-state is *bit-identical*
    to static ``propagate()`` on the same graph — the event-driven
    fixpoint and the three-phase construction are the same unique
    stable state.  Random schedules are covered by
    ``tests/test_bgp_dynamics.py``'s hypothesis suite."""

    def test_dynamics_end_state_bit_identical(self, small_internet):
        from repro.bgp.dynamics import DynamicsConfig, DynamicsEngine

        graph = small_internet.graph
        asns = [asys.asn for asys in graph.ases()]
        for origin in asns[:: max(1, len(asns) // 8)]:
            engine = DynamicsEngine(graph, DynamicsConfig(seed=0))
            engine.schedule_announce(0.0, origin)
            engine.run()
            assert engine.converged
            static = propagate(graph, origin, fast=True)
            assert engine.routes() == static._routes, f"origin {origin}"
            assert engine.routing_table()._routes == static._routes

    def test_dynamics_grooming_bit_identical(self, small_internet):
        from repro.bgp.dynamics import DynamicsConfig, DynamicsEngine

        graph = small_internet.graph
        origin = small_internet.provider_asn
        neighbors = sorted(graph.neighbors(origin))
        kwargs = dict(
            prepends={neighbors[0]: 2, neighbors[-1]: 1},
            suppressed=frozenset({neighbors[1]}),
        )
        engine = DynamicsEngine(graph, DynamicsConfig(seed=0))
        engine.schedule_announce(0.0, origin, **kwargs)
        engine.run()
        static = propagate(graph, origin, fast=True, **kwargs)
        assert engine.routes() == static._routes

    def test_dynamics_after_failure_matches_static_on_effective_graph(
        self, small_internet
    ):
        from repro.bgp.dynamics import DynamicsConfig, DynamicsEngine

        graph = small_internet.graph
        origin = small_internet.provider_asn
        neighbor = sorted(graph.neighbors(origin))[0]
        engine = DynamicsEngine(graph, DynamicsConfig(seed=1))
        engine.schedule_announce(0.0, origin)
        engine.run()
        engine.schedule_link_down(engine.now + 1.0, origin, neighbor)
        engine.run()
        assert engine.converged
        static = propagate(engine.effective_graph(), origin, fast=True)
        assert engine.routes() == static._routes
