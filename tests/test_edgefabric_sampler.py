"""Tests for the spray-and-measure campaign driver."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.edgefabric import MeasurementConfig, run_measurement
from repro.workloads import generate_client_prefixes


class TestConfigValidation:
    def test_defaults_valid(self):
        MeasurementConfig()

    def test_positive_days(self):
        with pytest.raises(MeasurementError):
            MeasurementConfig(days=0)

    def test_positive_routes(self):
        with pytest.raises(MeasurementError):
            MeasurementConfig(max_routes=0)

    def test_last_mile_range(self):
        with pytest.raises(MeasurementError):
            MeasurementConfig(last_mile_ms_range=(5.0, 1.0))

    def test_congestion_defaults_sized_to_horizon(self):
        cfg = MeasurementConfig(days=3.0)
        assert cfg.congestion_config().horizon_hours == pytest.approx(72.0)
        assert cfg.dest_congestion_config().horizon_hours == pytest.approx(72.0)

    def test_dest_congestion_heavier_than_route(self):
        """The §3.1.1 structure: shared events dominate route events."""
        cfg = MeasurementConfig()
        assert (
            cfg.dest_congestion_config().event_rate_per_day
            > cfg.congestion_config().event_rate_per_day
        )


class TestRunMeasurement:
    @pytest.fixture(scope="class")
    def dataset(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 40, seed=3)
        return run_measurement(
            small_internet, prefixes, MeasurementConfig(days=0.5, seed=3)
        )

    def test_window_count(self, dataset):
        assert dataset.n_windows == 48  # half a day of 15-minute windows

    def test_medians_physical(self, dataset):
        medians = dataset.medians[~np.isnan(dataset.medians)]
        assert (medians > 0).all()
        assert medians.max() < 1500.0  # below any plausible RTT ceiling

    def test_volumes_positive(self, dataset):
        assert (dataset.volumes > 0).all()

    def test_ci_positive(self, dataset):
        ci = dataset.ci_half[~np.isnan(dataset.ci_half)]
        assert (ci > 0).all()

    def test_deterministic(self, small_internet):
        prefixes = generate_client_prefixes(small_internet, 20, seed=4)
        cfg = MeasurementConfig(days=0.25, seed=4)
        a = run_measurement(small_internet, prefixes, cfg)
        b = run_measurement(small_internet, prefixes, cfg)
        assert np.array_equal(a.medians, b.medians, equal_nan=True)
        assert np.array_equal(a.volumes, b.volumes)

    def test_requires_prefixes(self, small_internet):
        with pytest.raises(MeasurementError):
            run_measurement(small_internet, [])

    def test_shared_congestion_moves_routes_together(self, dataset):
        """Route medians of the same pair must be positively correlated:
        last-mile and destination congestion hit every route."""
        correlations = []
        for i, pair in enumerate(dataset.pairs):
            if pair.n_routes < 2:
                continue
            a = dataset.medians[i, :, 0]
            b = dataset.medians[i, :, 1]
            if np.std(a) > 0 and np.std(b) > 0:
                correlations.append(np.corrcoef(a, b)[0, 1])
        assert np.median(correlations) > 0.3

    def test_base_latency_tracks_geography(self, dataset):
        """Windowed medians sit above twice the route's propagation."""
        for i, pair in enumerate(dataset.pairs):
            for j, route in enumerate(pair.routes):
                assert (
                    np.nanmin(dataset.medians[i, :, j])
                    >= 2.0 * route.base_one_way_ms - 1.0
                )
