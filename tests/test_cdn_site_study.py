"""Tests for the anycast site-count sweep."""

import pytest

from repro.errors import AnalysisError
from repro.core import cdn_topology
from repro.cdn import site_count_study


@pytest.fixture(scope="module")
def study():
    return site_count_study(
        cdn_topology(1), site_counts=(4, 10, 20), n_prefixes=60, seed=5
    )


class TestSiteStudy:
    def test_points_ascending(self, study):
        assert [p.n_sites for p in study.points] == [4, 10, 20]

    def test_more_sites_lower_latency(self, study):
        """The headline: adding sites reduces median latency."""
        medians = [p.median_rtt_ms for p in study.points]
        assert medians[-1] < medians[0]

    def test_diminishing_returns(self, study):
        """Per-site marginal benefit shrinks as the deployment grows."""
        marginal = study.marginal_benefit_ms()
        assert marginal[0][2] >= marginal[-1][2] - 1.0

    def test_metrics_bounded(self, study):
        for point in study.points:
            assert point.median_rtt_ms > 0
            assert point.p90_rtt_ms >= point.median_rtt_ms
            assert 0.0 <= point.frac_suboptimal_catchment <= 1.0
            assert point.p90_gap_ms >= point.median_gap_ms

    def test_validation(self):
        with pytest.raises(AnalysisError):
            site_count_study(cdn_topology(0), site_counts=())
        with pytest.raises(AnalysisError):
            site_count_study(cdn_topology(0), site_counts=(1,))
        with pytest.raises(AnalysisError):
            site_count_study(cdn_topology(0), site_counts=(10_000,))
