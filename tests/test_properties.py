"""Property-based tests (hypothesis) for core math and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import weighted_cdf, weighted_quantile
from repro.geo import GeoPoint, great_circle_km, propagation_one_way_ms
from repro.bgp import Route, RoutePref
from repro.netmodel import CongestionConfig, CongestionModel

latitudes = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
points = st.builds(GeoPoint, latitudes, longitudes)


class TestGreatCircleProperties:
    @given(points, points)
    def test_symmetry(self, a, b):
        assert great_circle_km(a, b) == pytest.approx(
            great_circle_km(b, a), abs=1e-6
        )

    @given(points)
    def test_identity(self, a):
        assert great_circle_km(a, a) == 0.0

    @given(points, points)
    def test_bounded_by_half_circumference(self, a, b):
        assert 0.0 <= great_circle_km(a, b) <= 20_040.0

    @given(points, points, points)
    @settings(max_examples=200)
    def test_triangle_inequality(self, a, b, c):
        ab = great_circle_km(a, b)
        bc = great_circle_km(b, c)
        ac = great_circle_km(a, c)
        # Tolerance of one meter: haversine loses a few dozen microns of
        # precision near antipodal pairs, which hypothesis finds.
        assert ac <= ab + bc + 1e-3

    @given(
        st.floats(min_value=0.0, max_value=40_000.0),
        st.floats(min_value=1.0, max_value=3.0),
    )
    def test_propagation_monotone_in_inflation(self, km, inflation):
        assert propagation_one_way_ms(km, inflation) >= propagation_one_way_ms(km)


weights_and_values = st.lists(
    st.tuples(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


class TestWeightedCdfProperties:
    @given(weights_and_values)
    def test_cdf_monotone_and_normalized(self, pairs):
        values = [p[0] for p in pairs]
        weights = [p[1] for p in pairs]
        cdf = weighted_cdf(values, weights)
        assert (np.diff(cdf.ps) >= -1e-12).all()
        assert cdf.ps[-1] == pytest.approx(1.0)
        assert (np.diff(cdf.xs) > 0).all()

    @given(weights_and_values, st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_inverse(self, pairs, q):
        values = [p[0] for p in pairs]
        weights = [p[1] for p in pairs]
        cdf = weighted_cdf(values, weights)
        x = cdf.quantile(q)
        # The CDF at the q-quantile covers at least q (up to the last value).
        if x < cdf.xs[-1]:
            assert cdf.fraction_at_most(x) >= q - 1e-9

    @given(weights_and_values)
    def test_median_within_range(self, pairs):
        values = [p[0] for p in pairs]
        weights = [p[1] for p in pairs]
        median = weighted_quantile(values, 0.5, weights)
        assert min(values) <= median <= max(values)

    @given(weights_and_values, st.floats(min_value=-10.0, max_value=10.0))
    def test_shift_equivariance(self, pairs, shift):
        values = [p[0] for p in pairs]
        weights = [p[1] for p in pairs]
        base = weighted_quantile(values, 0.5, weights)
        shifted = weighted_quantile([v + shift for v in values], 0.5, weights)
        assert shifted == pytest.approx(base + shift, abs=1e-6)


as_paths = st.lists(
    st.integers(min_value=1, max_value=10_000), min_size=1, max_size=8, unique=True
)


class TestRouteProperties:
    @given(as_paths)
    def test_roundtrip_extension(self, path):
        """Building a route hop by hop preserves path and length."""
        route = Route(path=(path[-1],), pref=RoutePref.ORIGIN, advertised_length=0)
        for asn in reversed(path[:-1]):
            route = route.extended_to(asn, RoutePref.CUSTOMER)
        assert route.path == tuple(path)
        assert route.advertised_length == len(path) - 1
        assert route.as_hops == len(path) - 1

    @given(as_paths, st.integers(min_value=0, max_value=7))
    def test_prepending_only_lengthens(self, path, extra):
        route = Route(path=(path[-1],), pref=RoutePref.ORIGIN, advertised_length=0)
        for asn in reversed(path[:-1]):
            route = route.extended_to(asn, RoutePref.CUSTOMER, extra_length=extra)
        assert route.advertised_length >= route.as_hops


class TestCongestionProperties:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.text(alphabet="abcdefgh:0123456789", min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_determinism_per_seed_key(self, seed, key):
        cfg = CongestionConfig(horizon_hours=48.0)
        a = CongestionModel(seed, cfg).events(key)
        b = CongestionModel(seed, cfg).events(key)
        assert a == b

    @given(st.floats(min_value=-180.0, max_value=180.0))
    @settings(max_examples=50, deadline=None)
    def test_diurnal_nonnegative_everywhere(self, lon):
        model = CongestionModel(0, CongestionConfig(horizon_hours=24.0))
        times = np.linspace(0.0, 24.0, 97)
        delay = model.diurnal_delay(times, lon)
        assert (delay >= 0.0).all()
        assert (delay <= model.config.diurnal_peak_ms + 1e-9).all()
