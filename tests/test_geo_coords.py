"""Tests for great-circle distance and propagation delay."""

import math

import pytest

import numpy as np

from repro.geo import (
    EARTH_RADIUS_KM,
    GeoPoint,
    great_circle_km,
    great_circle_km_matrix,
    propagation_one_way_ms,
    propagation_rtt_ms,
)


class TestGeoPoint:
    def test_valid_construction(self):
        point = GeoPoint(40.7, -74.0)
        assert point.lat == 40.7
        assert point.lon == -74.0

    @pytest.mark.parametrize("lat", [-90.1, 91.0, 180.0])
    def test_latitude_out_of_range(self, lat):
        with pytest.raises(ValueError):
            GeoPoint(lat, 0.0)

    @pytest.mark.parametrize("lon", [-180.5, 181.0, 360.0])
    def test_longitude_out_of_range(self, lon):
        with pytest.raises(ValueError):
            GeoPoint(0.0, lon)

    def test_boundary_values_allowed(self):
        GeoPoint(90.0, 180.0)
        GeoPoint(-90.0, -180.0)

    def test_distance_method_matches_function(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(10.0, 10.0)
        assert a.distance_km(b) == great_circle_km(a, b)


class TestGreatCircle:
    def test_zero_distance(self):
        p = GeoPoint(51.5, -0.1)
        assert great_circle_km(p, p) == 0.0

    def test_symmetry(self):
        a = GeoPoint(40.7, -74.0)
        b = GeoPoint(35.7, 139.7)
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))

    def test_quarter_circumference(self):
        # Pole to equator is a quarter of the circumference.
        pole = GeoPoint(90.0, 0.0)
        equator = GeoPoint(0.0, 0.0)
        expected = math.pi * EARTH_RADIUS_KM / 2.0
        assert great_circle_km(pole, equator) == pytest.approx(expected, rel=1e-9)

    def test_antipodal_is_half_circumference(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        expected = math.pi * EARTH_RADIUS_KM
        assert great_circle_km(a, b) == pytest.approx(expected, rel=1e-9)

    def test_known_city_pair(self):
        # New York <-> London is roughly 5570 km.
        ny = GeoPoint(40.71, -74.01)
        lon = GeoPoint(51.51, -0.13)
        assert great_circle_km(ny, lon) == pytest.approx(5570, rel=0.02)

    def test_dateline_wrap(self):
        # Points just either side of the antimeridian are close.
        a = GeoPoint(0.0, 179.9)
        b = GeoPoint(0.0, -179.9)
        assert great_circle_km(a, b) < 25.0


class TestPropagation:
    def test_speed_of_light_rule(self):
        # 200 km per ms one way; 100 km per ms of RTT.
        assert propagation_one_way_ms(200.0) == pytest.approx(1.0)
        assert propagation_rtt_ms(100.0) == pytest.approx(1.0)

    def test_inflation_scales_linearly(self):
        assert propagation_one_way_ms(1000.0, inflation=1.5) == pytest.approx(
            1.5 * propagation_one_way_ms(1000.0)
        )

    def test_zero_distance(self):
        assert propagation_one_way_ms(0.0) == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            propagation_one_way_ms(-1.0)

    def test_sub_unit_inflation_rejected(self):
        with pytest.raises(ValueError):
            propagation_one_way_ms(100.0, inflation=0.9)

    def test_rtt_is_twice_one_way(self):
        assert propagation_rtt_ms(750.0, 1.2) == pytest.approx(
            2.0 * propagation_one_way_ms(750.0, 1.2)
        )


class TestDistanceMatrix:
    def test_matches_scalar_pairwise(self):
        rng = np.random.default_rng(7)
        pts_a = [
            GeoPoint(float(lat), float(lon))
            for lat, lon in zip(
                rng.uniform(-89, 89, 9), rng.uniform(-179, 179, 9)
            )
        ]
        pts_b = [
            GeoPoint(float(lat), float(lon))
            for lat, lon in zip(
                rng.uniform(-89, 89, 5), rng.uniform(-179, 179, 5)
            )
        ]
        matrix = great_circle_km_matrix(pts_a, pts_b)
        assert matrix.shape == (9, 5)
        for i, a in enumerate(pts_a):
            for j, b in enumerate(pts_b):
                assert matrix[i, j] == pytest.approx(
                    great_circle_km(a, b), abs=1e-6
                )

    def test_zero_on_identical_points(self):
        p = GeoPoint(12.3, 45.6)
        assert great_circle_km_matrix([p], [p])[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_antipodal_clamp(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        d = great_circle_km_matrix([a], [b])[0, 0]
        assert d == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-9)

    def test_empty_inputs(self):
        assert great_circle_km_matrix([], []).shape == (0, 0)
        assert great_circle_km_matrix([GeoPoint(0, 0)], []).shape == (1, 0)
