"""Tests for campaign checkpoints: crash-safe journal, resume semantics.

The stub studies come from ``test_runner_campaign`` (module scope, so
worker processes and the SIGKILL subprocess can resolve them by import
path).
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import CacheCorruptionError
from repro.runner import (
    CampaignCheckpoint,
    CampaignRunner,
    CheckpointEntry,
    JobSpec,
    ResultStore,
    campaign_fingerprint,
)
import repro.runner.campaign as campaign_module

from test_runner_campaign import AddStudy, SlowOnceStudy, _count_runs, _specs


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


def _entry(spec, value=1.0):
    payload = {
        "name": "add",
        "summary": {"value": value},
        "hypotheses": [],
    }
    return CheckpointEntry(
        spec_hash=spec.content_hash,
        payload=payload,
        elapsed_s=0.25,
        metrics={
            "index": 0,
            "study": spec.describe(),
            "seed": spec.seed,
            "spec_hash": spec.content_hash,
            "status": "ran",
            "attempts": 1,
            "elapsed_s": 0.25,
            "saved_s": 0.0,
            "attempt_s": [0.25],
            "timeouts": 0,
        },
    )


class TestFingerprint:
    def test_depends_on_specs_and_order(self, tmp_path):
        specs, _ = _specs(tmp_path, [0, 1, 2])
        assert campaign_fingerprint(specs) == campaign_fingerprint(list(specs))
        assert campaign_fingerprint(specs) != campaign_fingerprint(specs[::-1])
        assert campaign_fingerprint(specs) != campaign_fingerprint(specs[:2])


class TestJournal:
    def test_roundtrip(self, tmp_path):
        specs, _ = _specs(tmp_path, [0, 1])
        fingerprint = campaign_fingerprint(specs)
        checkpoint = CampaignCheckpoint(tmp_path, fingerprint)
        checkpoint.record(_entry(specs[0]))
        path = checkpoint.write()
        assert path.exists()

        fresh = CampaignCheckpoint(tmp_path, fingerprint)
        assert fresh.load() == 1
        entry = fresh.entries[specs[0].content_hash]
        assert entry.payload["summary"] == {"value": 1.0}
        assert entry.metrics["status"] == "ran"

    def test_missing_file_restores_nothing(self, tmp_path):
        specs, _ = _specs(tmp_path, [0])
        checkpoint = CampaignCheckpoint(tmp_path, campaign_fingerprint(specs))
        assert checkpoint.load() == 0

    def test_foreign_fingerprint_restores_nothing(self, tmp_path):
        specs, _ = _specs(tmp_path, [0, 1])
        mine = CampaignCheckpoint(tmp_path, campaign_fingerprint(specs))
        mine.record(_entry(specs[0]))
        path = mine.write()
        # Another campaign whose fingerprint truncates to the same file
        # name prefix would collide on path; simulate by loading the
        # same file under a different full fingerprint.
        other = CampaignCheckpoint(tmp_path, campaign_fingerprint(specs[::-1]))
        other_path = other.path
        if other_path != path:
            other_path.parent.mkdir(parents=True, exist_ok=True)
            other_path.write_text(path.read_text())
        assert other.load() == 0

    def test_garbled_checkpoint_raises(self, tmp_path):
        specs, _ = _specs(tmp_path, [0])
        checkpoint = CampaignCheckpoint(tmp_path, campaign_fingerprint(specs))
        checkpoint.record(_entry(specs[0]))
        path = checkpoint.write()
        path.write_text(path.read_text()[:40] + "...torn")
        with pytest.raises(CacheCorruptionError):
            CampaignCheckpoint(tmp_path, campaign_fingerprint(specs)).load()

    def test_checksum_mismatch_raises(self, tmp_path):
        specs, _ = _specs(tmp_path, [0])
        fingerprint = campaign_fingerprint(specs)
        checkpoint = CampaignCheckpoint(tmp_path, fingerprint)
        checkpoint.record(_entry(specs[0]))
        path = checkpoint.write()
        document = json.loads(path.read_text())
        body = document["completed"][specs[0].content_hash]
        body["payload"]["summary"]["value"] = 99.0  # silent bit rot
        path.write_text(json.dumps(document))
        with pytest.raises(CacheCorruptionError, match="checksum"):
            CampaignCheckpoint(tmp_path, fingerprint).load()

    def test_writes_are_byte_identical_for_same_progress(self, tmp_path):
        specs, _ = _specs(tmp_path, [0, 1])
        checkpoint = CampaignCheckpoint(tmp_path, campaign_fingerprint(specs))
        checkpoint.record(_entry(specs[1]))
        checkpoint.record(_entry(specs[0]))
        first = checkpoint.write().read_bytes()
        assert checkpoint.write().read_bytes() == first

    def test_clear_removes_file(self, tmp_path):
        specs, _ = _specs(tmp_path, [0])
        checkpoint = CampaignCheckpoint(tmp_path, campaign_fingerprint(specs))
        checkpoint.record(_entry(specs[0]))
        path = checkpoint.write()
        checkpoint.clear()
        assert not path.exists()
        checkpoint.clear()  # idempotent


class _CrashAfter:
    """Wrap the inline job executor to die after N successful jobs."""

    def __init__(self, limit: int):
        self.limit = limit
        self.calls = 0
        self.original = campaign_module._run_job

    def __call__(self, spec, *args, **kwargs):
        if self.calls >= self.limit:
            raise KeyboardInterrupt("simulated orchestrator death")
        self.calls += 1
        return self.original(spec, *args, **kwargs)


class TestCampaignResume:
    def test_checkpoint_written_mid_campaign_and_resumed(
        self, tmp_path, monkeypatch
    ):
        specs, trace = _specs(tmp_path, [0, 1, 2, 3])
        monkeypatch.setattr(campaign_module, "_run_job", _CrashAfter(2))
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(checkpoint_dir=tmp_path).run(specs)
        assert _count_runs(trace) == 2
        checkpoint = CampaignCheckpoint(tmp_path, campaign_fingerprint(specs))
        assert checkpoint.load() == 2

        monkeypatch.undo()
        report = CampaignRunner(checkpoint_dir=tmp_path, resume=True).run(specs)
        # Restored jobs were not recomputed; the remainder ran.
        assert _count_runs(trace) == 4
        assert [m.status for m in report.metrics] == ["ran"] * 4
        assert [r.summary["value"] for r in report.results] == [1.0, 2.0, 3.0, 4.0]
        # Clean completion retires the checkpoint.
        assert not checkpoint.path.exists()

    def test_resume_without_checkpoint_runs_everything(self, tmp_path):
        specs, trace = _specs(tmp_path, [0, 1])
        report = CampaignRunner(checkpoint_dir=tmp_path, resume=True).run(specs)
        assert _count_runs(trace) == 2
        assert [m.status for m in report.metrics] == ["ran", "ran"]

    def test_resume_requires_checkpoint_dir(self):
        from repro.errors import RunnerError

        with pytest.raises(RunnerError, match="checkpoint_dir"):
            CampaignRunner(resume=True)

    def test_corrupt_checkpoint_discarded_and_recomputed(
        self, tmp_path, monkeypatch
    ):
        specs, trace = _specs(tmp_path, [0, 1, 2])
        monkeypatch.setattr(campaign_module, "_run_job", _CrashAfter(2))
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(checkpoint_dir=tmp_path).run(specs)
        monkeypatch.undo()
        checkpoint = CampaignCheckpoint(tmp_path, campaign_fingerprint(specs))
        checkpoint.path.write_text(checkpoint.path.read_text()[:50])

        report = CampaignRunner(checkpoint_dir=tmp_path, resume=True).run(specs)
        # Nothing could be restored: every job recomputed, report whole.
        assert _count_runs(trace) == 2 + 3
        assert [m.status for m in report.metrics] == ["ran"] * 3
        assert not checkpoint.path.exists()

    def test_checkpoint_every_batches_writes(self, tmp_path, monkeypatch):
        specs, _ = _specs(tmp_path, [0, 1, 2, 3, 4])
        monkeypatch.setattr(campaign_module, "_run_job", _CrashAfter(3))
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(checkpoint_dir=tmp_path, checkpoint_every=2).run(specs)
        checkpoint = CampaignCheckpoint(tmp_path, campaign_fingerprint(specs))
        # Three jobs completed but only the first two flushes landed.
        assert checkpoint.load() == 2

    def test_restored_metrics_keep_original_rows(self, tmp_path, monkeypatch):
        specs, _ = _specs(tmp_path, [0, 1])
        monkeypatch.setattr(campaign_module, "_run_job", _CrashAfter(1))
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(checkpoint_dir=tmp_path).run(specs)
        monkeypatch.undo()
        report = CampaignRunner(checkpoint_dir=tmp_path, resume=True).run(specs)
        restored = report.metrics[0]
        assert restored.status == "ran"  # not re-labeled as a cache hit
        assert restored.attempts == 1
        assert restored.elapsed_s > 0.0


class TestResumeEqualsUninterrupted:
    """The chaos invariant: resume ∘ crash ≡ uninterrupted run."""

    @staticmethod
    def _digest(report):
        return {
            "summaries": [dict(r.summary) for r in report.results],
            "statuses": [m.status for m in report.metrics],
            "attempts": [m.attempts for m in report.metrics],
            "hashes": [m.spec_hash for m in report.metrics],
        }

    @settings(max_examples=12, deadline=None)
    @given(
        n_jobs=st.integers(min_value=2, max_value=6),
        crash_after=st.integers(min_value=0, max_value=5),
        offset=st.floats(min_value=0.0, max_value=8.0),
    )
    def test_property(self, n_jobs, crash_after, offset):
        crash_after = min(crash_after, n_jobs - 1)
        with tempfile.TemporaryDirectory() as scratch:
            scratch = Path(scratch)
            specs = [
                JobSpec.from_study(AddStudy(seed=s, offset=offset))
                for s in range(n_jobs)
            ]
            reference = CampaignRunner().run(specs)

            crash_dir = scratch / "crash"
            crasher = _CrashAfter(crash_after)
            campaign_module._run_job = crasher
            try:
                with pytest.raises(KeyboardInterrupt):
                    CampaignRunner(checkpoint_dir=crash_dir).run(specs)
            finally:
                campaign_module._run_job = crasher.original
            resumed = CampaignRunner(checkpoint_dir=crash_dir, resume=True).run(
                specs
            )
            assert self._digest(resumed) == self._digest(reference)


#: Driver for the SIGKILL test: runs the campaign exactly as the parent
#: will on resume, in a process the parent is free to kill.
_VICTIM_SCRIPT = """
import json, sys
sys.path[:0] = json.loads(sys.argv[1])
from repro.runner import CampaignRunner, JobSpec, ResultStore
specs = [JobSpec(**d) for d in json.loads(sys.argv[2])]
workdir = sys.argv[3]
CampaignRunner(store=ResultStore(workdir), checkpoint_dir=workdir).run(specs)
"""


class TestSigkillResume:
    def test_sigkilled_campaign_resumes_to_identical_report(self, tmp_path):
        """A campaign killed with SIGKILL mid-run finishes under --resume."""
        trace = tmp_path / "trace"
        trace.mkdir()
        sentinel = tmp_path / "slow-once"
        fast = [
            JobSpec.from_study(AddStudy(seed=s, trace_dir=str(trace)))
            for s in range(3)
        ]
        # One job that hangs on its first execution: the kill always
        # lands while it is running, and the resumed run (sentinel now
        # present) completes it quickly.
        slow = JobSpec.from_study(
            SlowOnceStudy(seed=9, sentinel=str(sentinel), sleep_s=60.0)
        )
        specs = fast + [slow]
        spec_args = json.dumps(
            [
                {"study": s.study, "seed": s.seed, "config": dict(s.config)}
                for s in specs
            ]
        )
        paths = json.dumps([str(p) for p in sys.path])

        victim = subprocess.Popen(
            [sys.executable, "-c", _VICTIM_SCRIPT, paths, spec_args, str(tmp_path)],
            start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if sentinel.exists() and _count_runs(trace) == 3:
                    break
                assert victim.poll() is None, "victim finished before the kill"
                time.sleep(0.05)
            else:
                pytest.fail("victim made no progress before the deadline")
        finally:
            try:
                os.killpg(os.getpgid(victim.pid), signal.SIGKILL)
            except ProcessLookupError:
                pass
            victim.wait()

        checkpoint = CampaignCheckpoint(tmp_path, campaign_fingerprint(specs))
        assert checkpoint.load() == 3

        report = CampaignRunner(
            store=ResultStore(tmp_path), checkpoint_dir=tmp_path, resume=True
        ).run(specs)
        assert [m.status for m in report.metrics] == ["ran"] * 4
        assert [r.summary.get("value", r.summary.get("ok")) for r in report.results] == [
            1.0,
            2.0,
            3.0,
            1.0,
        ]
        # The three checkpointed jobs were restored, not recomputed.
        assert _count_runs(trace) == 3
        assert not checkpoint.path.exists()
