"""Tests for the routing-scheme comparison framework."""

import pytest

from repro.errors import AnalysisError
from repro.core import SCHEME_BGP, SCHEME_OMNISCIENT, SCHEME_STATIC_BEST
from repro.core.schemes import compare_schemes
from repro.edgefabric import MeasurementConfig, run_measurement
from repro.workloads import generate_client_prefixes


@pytest.fixture(scope="module")
def dataset(small_internet):
    prefixes = generate_client_prefixes(small_internet, 40, seed=3)
    return run_measurement(
        small_internet, prefixes, MeasurementConfig(days=0.5, seed=3)
    )


class TestCompareSchemes:
    def test_all_schemes_reported(self, dataset):
        result = compare_schemes(dataset)
        assert set(result) == {"bgp-policy", "static-best", "omniscient"}
        for stats in result.values():
            assert stats["median_ms"] > 0
            assert stats["p95_ms"] >= stats["median_ms"]

    def test_bgp_improvement_is_zero(self, dataset):
        result = compare_schemes(dataset)
        assert result["bgp-policy"]["improvement_over_bgp_ms"] == pytest.approx(0.0)

    def test_omniscient_never_worse(self, dataset):
        result = compare_schemes(dataset)
        assert result["omniscient"]["improvement_over_bgp_ms"] >= -1e-9

    def test_paper_headline_small_gain(self, dataset):
        """The performance-aware upper bound beats BGP only marginally."""
        result = compare_schemes(dataset)
        assert result["omniscient"]["improvement_over_bgp_ms"] < 5.0

    def test_empty_schemes_rejected(self, dataset):
        with pytest.raises(AnalysisError):
            compare_schemes(dataset, schemes=())

    def test_works_without_bgp_in_list(self, dataset):
        result = compare_schemes(dataset, schemes=(SCHEME_OMNISCIENT,))
        assert "omniscient" in result
        assert "improvement_over_bgp_ms" in result["omniscient"]

    def test_scheme_achieved_shapes(self, dataset):
        for scheme in (SCHEME_BGP, SCHEME_OMNISCIENT, SCHEME_STATIC_BEST):
            achieved = scheme.achieved(dataset)
            assert achieved.shape == (dataset.n_pairs, dataset.n_windows)
