"""Tests for Route objects and their invariants."""

import pytest

from repro.errors import RoutingError
from repro.bgp import Route, RoutePref


class TestRouteInvariants:
    def test_origin_route(self):
        route = Route(path=(7,), pref=RoutePref.ORIGIN, advertised_length=0)
        assert route.holder == 7
        assert route.origin == 7
        assert route.as_hops == 0

    def test_empty_path_rejected(self):
        with pytest.raises(RoutingError):
            Route(path=(), pref=RoutePref.ORIGIN, advertised_length=0)

    def test_loop_rejected(self):
        with pytest.raises(RoutingError):
            Route(path=(1, 2, 1), pref=RoutePref.CUSTOMER, advertised_length=2)

    def test_advertised_length_cannot_undershoot(self):
        with pytest.raises(RoutingError):
            Route(path=(1, 2, 3), pref=RoutePref.PEER, advertised_length=1)

    def test_origin_route_must_be_single_as(self):
        with pytest.raises(RoutingError):
            Route(path=(1, 2), pref=RoutePref.ORIGIN, advertised_length=1)

    def test_next_hop(self):
        route = Route(path=(1, 2, 3), pref=RoutePref.PEER, advertised_length=2)
        assert route.holder == 1
        assert route.next_hop == 2
        assert route.origin == 3

    def test_origin_has_no_next_hop(self):
        route = Route(path=(7,), pref=RoutePref.ORIGIN, advertised_length=0)
        with pytest.raises(RoutingError):
            route.next_hop


class TestExtension:
    def test_extend_prepends_learner(self):
        route = Route(path=(2, 3), pref=RoutePref.CUSTOMER, advertised_length=1)
        extended = route.extended_to(1, RoutePref.PEER)
        assert extended.path == (1, 2, 3)
        assert extended.pref is RoutePref.PEER
        assert extended.advertised_length == 2

    def test_extend_with_prepending(self):
        route = Route(path=(3,), pref=RoutePref.ORIGIN, advertised_length=0)
        extended = route.extended_to(1, RoutePref.CUSTOMER, extra_length=3)
        assert extended.advertised_length == 4
        assert extended.as_hops == 1

    def test_extend_to_as_on_path_rejected(self):
        route = Route(path=(2, 3), pref=RoutePref.CUSTOMER, advertised_length=1)
        with pytest.raises(RoutingError):
            route.extended_to(3, RoutePref.PEER)


class TestRoutePrefOrdering:
    def test_economics_ordering(self):
        assert RoutePref.ORIGIN > RoutePref.CUSTOMER > RoutePref.PEER > RoutePref.PROVIDER
