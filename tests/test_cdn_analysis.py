"""Tests for the Figure 3/4 analyses."""

import numpy as np
import pytest

from repro.cdn import (
    BeaconConfig,
    CdnDeployment,
    anycast_vs_best_unicast,
    redirection_improvement,
    run_beacon_campaign,
    train_redirection_policy,
)


@pytest.fixture(scope="module")
def dataset(small_internet, small_prefixes):
    deployment = CdnDeployment(small_internet)
    return run_beacon_campaign(
        deployment,
        small_prefixes,
        BeaconConfig(days=2.0, requests_per_prefix=32, seed=6),
    )


class TestFig3:
    def test_world_group_always_present(self, dataset):
        result = anycast_vs_best_unicast(dataset)
        assert "world" in result.ccdfs
        assert 0.0 <= result.frac_within_10ms["world"] <= 1.0
        assert 0.0 <= result.frac_beyond_100ms["world"] <= 1.0

    def test_ccdf_monotone_decreasing(self, dataset):
        result = anycast_vs_best_unicast(dataset)
        for ccdf in result.ccdfs.values():
            assert (np.diff(ccdf.ps) <= 1e-12).all()

    def test_tail_consistency(self, dataset):
        """within-10ms + beyond-100ms cannot exceed 1."""
        result = anycast_vs_best_unicast(dataset)
        for group in result.frac_within_10ms:
            assert (
                result.frac_within_10ms[group]
                + result.frac_beyond_100ms.get(group, 0.0)
                <= 1.0 + 1e-9
            )

    def test_anycast_mostly_good(self, dataset):
        """The paper's takeaway: anycast is within 10 ms of the best
        unicast for most requests."""
        result = anycast_vs_best_unicast(dataset)
        assert result.frac_within_10ms["world"] > 0.5


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        policy = train_redirection_policy(dataset, margin_ms=0.5, max_train_samples=4)
        return redirection_improvement(dataset, policy)

    def test_fractions_bounded(self, result):
        assert 0.0 <= result.frac_improved <= 1.0
        assert 0.0 <= result.frac_hurt <= 1.0
        assert result.frac_improved + result.frac_hurt <= 1.0

    def test_p75_dominates_median(self, result):
        """Per prefix, the p75 improvement >= the median improvement, so
        the p75 CDF sits to the right (stochastically dominates)."""
        for q in (0.25, 0.5, 0.75):
            assert result.p75_cdf.quantile(q) >= result.median_cdf.quantile(q) - 1e-9

    def test_anycast_policy_changes_nothing(self, dataset):
        """A policy that never redirects yields zero improvement."""
        from repro.cdn.dns_redirection import RedirectionPolicy

        null_policy = RedirectionPolicy(choices={}, margin_ms=1.0)
        result = redirection_improvement(dataset, null_policy)
        assert result.frac_improved == 0.0
        assert result.frac_hurt == 0.0
        assert result.median_cdf.median == pytest.approx(0.0, abs=1e-9)

    def test_redirection_helps_some_hurts_some(self, dataset):
        """The Figure 4 shape: redirection wins for a minority and is not
        free of regressions."""
        policy = train_redirection_policy(dataset, margin_ms=0.5, max_train_samples=4)
        result = redirection_improvement(dataset, policy)
        if policy.frac_redirected > 0:
            assert result.frac_improved > 0.0
