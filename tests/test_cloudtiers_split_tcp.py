"""Tests for the split-TCP study over the tier dataset."""

import pytest

from repro.errors import AnalysisError
from repro.cloudtiers import (
    CampaignConfig,
    CloudDeployment,
    SpeedcheckerPlatform,
    run_campaign,
    split_tcp_study,
)


@pytest.fixture(scope="module")
def setup(small_internet):
    deployment = CloudDeployment(small_internet)
    platform = SpeedcheckerPlatform(deployment, seed=4)
    dataset = run_campaign(
        platform, CampaignConfig(days=3, vps_per_day=50, rounds_per_day=3, seed=4)
    )
    return deployment, dataset


class TestSplitTcpStudy:
    def test_points_sorted_by_size(self, setup):
        deployment, dataset = setup
        result = split_tcp_study(dataset, deployment)
        sizes = [p.transfer_mb for p in result.points]
        assert sizes == sorted(sizes)
        assert result.n_vps > 0

    def test_split_beats_direct(self, setup):
        """§4: splitting helps over long distances — and the eligible
        panel is made of exactly the far-from-DC clients."""
        deployment, dataset = setup
        result = split_tcp_study(dataset, deployment)
        for point in result.points:
            assert point.split_benefit_ms > 0

    def test_backend_choice_matters_little(self, setup):
        """The §4 question answered: WAN vs public backend is a small
        effect next to the split itself."""
        deployment, dataset = setup
        result = split_tcp_study(dataset, deployment)
        for point in result.points:
            assert abs(point.wan_backend_advantage_ms) < point.split_benefit_ms

    def test_benefit_grows_then_saturates(self, setup):
        deployment, dataset = setup
        result = split_tcp_study(
            dataset, deployment, transfer_sizes_mb=(0.064, 1.0, 50.0)
        )
        benefits = [p.split_benefit_ms for p in result.points]
        # Mid-size transfers gain at least as much as tiny ones, and the
        # relative benefit shrinks for bottleneck-dominated transfers.
        assert benefits[1] >= benefits[0] * 0.5
        rel = [
            p.split_benefit_ms / p.direct_ms for p in result.points
        ]
        assert rel[-1] < rel[0] + 0.25

    def test_point_lookup(self, setup):
        deployment, dataset = setup
        result = split_tcp_study(dataset, deployment, transfer_sizes_mb=(1.0,))
        assert result.point(1.0).transfer_mb == 1.0
        with pytest.raises(AnalysisError):
            result.point(2.0)

    def test_empty_sizes_rejected(self, setup):
        deployment, dataset = setup
        with pytest.raises(AnalysisError):
            split_tcp_study(dataset, deployment, transfer_sizes_mb=())
