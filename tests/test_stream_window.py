"""Tests for keyed window aggregation and watermark lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamError
from repro.stream import WindowSpec, WindowedAggregator


class TestWindowSpec:
    def test_index_of_is_floor_division(self):
        spec = WindowSpec(minutes=15.0)
        idx = spec.index_of([0.0, 0.24, 0.25, 0.5, 23.99])
        assert idx.tolist() == [0, 0, 1, 2, 95]

    def test_start_end_bracket_index(self):
        spec = WindowSpec(minutes=15.0)
        assert spec.start_h(4) == 1.0
        assert spec.end_h(4) == 1.25

    def test_rejects_nonpositive_width(self):
        with pytest.raises(StreamError, match="positive"):
            WindowSpec(minutes=0.0)


class TestWindowedAggregator:
    def test_observations_group_by_window(self):
        agg = WindowedAggregator(window_minutes=15.0)
        agg.observe("k", [0.1, 0.2, 0.3], [1.0, 2.0, 3.0])
        assert agg.get("k", 0).count == 2  # 0.1, 0.2 land in window 0
        assert agg.get("k", 1).count == 1
        assert agg.n_cells == 2

    def test_keys_do_not_interfere(self):
        agg = WindowedAggregator(window_minutes=15.0)
        agg.observe("a", [0.1], [1.0])
        agg.observe("b", [0.1], [9.0])
        assert agg.get("a", 0).quantile(0.5) == 1.0
        assert agg.get("b", 0).quantile(0.5) == 9.0

    def test_watermark_closes_passed_windows(self):
        agg = WindowedAggregator(window_minutes=15.0, allowed_lateness_windows=1)
        agg.observe("k", [0.1], [1.0])
        # Window 0 closes once the watermark passes end(0) + 1 window.
        assert agg.advance_watermark(0.49) == 0
        assert agg.advance_watermark(0.50) == 1
        assert agg.n_open == 0 and agg.n_closed == 1
        closed = agg.poll_closed()
        assert [(key, w) for key, w, _ in closed] == [("k", 0)]
        assert agg.poll_closed() == []  # drained

    def test_watermark_never_regresses(self):
        agg = WindowedAggregator(window_minutes=15.0)
        agg.advance_watermark(2.0)
        agg.advance_watermark(1.0)
        assert agg.watermark_h == 2.0

    def test_late_rows_dropped_and_counted(self):
        agg = WindowedAggregator(window_minutes=15.0, allowed_lateness_windows=0)
        agg.observe("k", [0.1], [1.0])
        agg.advance_watermark(0.5)  # windows 0 and 1 are now closed
        agg.observe("k", [0.05, 0.45, 0.55], [7.0, 8.0, 9.0])
        assert agg.late_dropped == 2
        assert agg.get("k", 0).count == 1  # the late 7.0 never landed
        assert agg.get("k", 2).count == 1

    def test_zero_lateness_accepts_current_window(self):
        agg = WindowedAggregator(window_minutes=15.0, allowed_lateness_windows=0)
        agg.advance_watermark(0.30)  # inside window 1
        agg.observe("k", [0.30], [1.0])
        assert agg.late_dropped == 0
        assert agg.get("k", 1).count == 1

    def test_adopt_installs_verbatim(self):
        from repro.stream import CentroidSketch

        agg = WindowedAggregator(window_minutes=15.0)
        sketch = CentroidSketch()
        sketch.update_batch([1.0, 2.0])
        agg.adopt("k", 3, sketch)
        assert agg.get("k", 3) is sketch

    def test_adopt_replaces_closed_cell(self):
        from repro.stream import CentroidSketch

        agg = WindowedAggregator(window_minutes=15.0)
        agg.observe("k", [0.1], [1.0])
        agg.advance_watermark(10.0)
        assert agg.n_closed == 1
        replacement = CentroidSketch()
        replacement.update_batch([5.0])
        agg.adopt("k", 0, replacement)
        assert agg.get("k", 0) is replacement
        assert agg.n_closed == 1 and agg.n_open == 0

    def test_peak_open_tracks_high_water(self):
        agg = WindowedAggregator(window_minutes=15.0)
        agg.observe("a", [0.1, 0.3], [1.0, 2.0])
        agg.advance_watermark(10.0)
        agg.observe("a", [10.0], [3.0])
        assert agg.peak_open == 2
        assert agg.n_closed == 2

    def test_items_covers_open_and_closed(self):
        agg = WindowedAggregator(window_minutes=15.0)
        agg.observe("k", [0.1], [1.0])
        agg.advance_watermark(10.0)
        agg.observe("k", [10.0], [2.0])
        cells = {(key, w) for key, w, _ in agg.items()}
        assert cells == {("k", 0), ("k", 40)}

    def test_misaligned_observation_rejected(self):
        agg = WindowedAggregator()
        with pytest.raises(StreamError, match="align"):
            agg.observe("k", [0.1, 0.2], [1.0])

    def test_nonfinite_rejected(self):
        agg = WindowedAggregator()
        with pytest.raises(StreamError, match="finite"):
            agg.observe("k", [np.nan], [1.0])
        with pytest.raises(StreamError, match="finite"):
            agg.advance_watermark(np.inf)

    def test_negative_lateness_rejected(self):
        with pytest.raises(StreamError, match="lateness"):
            WindowedAggregator(allowed_lateness_windows=-1)
