"""Tests for the per-LDNS DNS redirection policy."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.cdn import BeaconConfig, CdnDeployment, run_beacon_campaign, train_redirection_policy
from repro.cdn.dns_redirection import ANYCAST, RedirectionPolicy, evaluation_slice


@pytest.fixture(scope="module")
def dataset(small_internet, small_prefixes):
    deployment = CdnDeployment(small_internet)
    return run_beacon_campaign(
        deployment,
        small_prefixes,
        BeaconConfig(days=2.0, requests_per_prefix=32, seed=6),
    )


class TestTraining:
    def test_choices_cover_all_resolvers(self, dataset):
        policy = train_redirection_policy(dataset)
        resolvers = {p.ldns for p in dataset.prefixes}
        assert set(policy.choices) == resolvers

    def test_choices_are_valid_targets(self, dataset):
        policy = train_redirection_policy(dataset)
        fe_codes = set(dataset.fe_codes[0])
        for choice in policy.choices.values():
            assert choice == ANYCAST or choice in fe_codes

    def test_large_margin_means_no_redirects(self, dataset):
        policy = train_redirection_policy(dataset, margin_ms=10_000.0)
        assert policy.frac_redirected == 0.0

    def test_margin_monotonicity(self, dataset):
        loose = train_redirection_policy(dataset, margin_ms=0.0)
        strict = train_redirection_policy(dataset, margin_ms=20.0)
        assert strict.frac_redirected <= loose.frac_redirected

    def test_requires_ldns(self, small_internet, dataset):
        from dataclasses import replace

        stripped = replace(dataset.prefixes[0], ldns=None)
        broken = type(dataset)(
            prefixes=[stripped] + dataset.prefixes[1:],
            catchments=dataset.catchments,
            fe_codes=dataset.fe_codes,
            times_h=dataset.times_h,
            anycast_rtt=dataset.anycast_rtt,
            unicast_rtt=dataset.unicast_rtt,
            n_nearby=dataset.n_nearby,
        )
        with pytest.raises(AnalysisError):
            train_redirection_policy(broken)

    def test_train_fraction_bounds(self, dataset):
        with pytest.raises(AnalysisError):
            train_redirection_policy(dataset, train_fraction=0.0)

    def test_sample_budget_positive(self, dataset):
        with pytest.raises(AnalysisError):
            train_redirection_policy(dataset, max_train_samples=0)

    def test_deterministic(self, dataset):
        a = train_redirection_policy(dataset)
        b = train_redirection_policy(dataset)
        assert a.choices == b.choices

    def test_redirects_broken_catchments(self, dataset):
        """Resolvers whose clients suffer a clearly bad catchment must be
        redirected to something better."""
        policy = train_redirection_policy(dataset, margin_ms=1.0)
        window = evaluation_slice(dataset)
        for i, prefix in enumerate(dataset.prefixes):
            anycast = np.median(dataset.anycast_rtt[i, window])
            best = np.nanmin(
                np.nanmedian(dataset.unicast_rtt[i, window, :], axis=0)
            )
            if anycast - best > 100.0:
                # Badly-served client: training should have moved its
                # resolver off anycast (its pool-mates share the AS and
                # thus the broken catchment).
                assert policy.choice_for(prefix.ldns) != ANYCAST


class TestEcs:
    def test_ecs_adds_prefix_choices(self, dataset):
        resolvers = {p.ldns for p in dataset.prefixes}
        policy = train_redirection_policy(dataset, ecs_resolvers=resolvers)
        plain = train_redirection_policy(dataset)
        assert plain.prefix_choices == {}
        # Per-prefix decisions exist for at least the pathological clients.
        assert isinstance(policy.prefix_choices, dict)

    def test_prefix_choice_takes_precedence(self):
        from repro.cdn.dns_redirection import RedirectionPolicy

        policy = RedirectionPolicy(
            choices={"ldns-x": "lhr"},
            margin_ms=1.0,
            prefix_choices={"p00001": "nrt"},
        )
        assert policy.choice_for("ldns-x", pid="p00001") == "nrt"
        assert policy.choice_for("ldns-x", pid="p00002") == "lhr"
        assert policy.choice_for("ldns-x") == "lhr"

    def test_ecs_never_increases_eval_gap_much(self, dataset):
        """Per-client granularity should not make things meaningfully
        worse than pooled decisions."""
        from repro.cdn import redirection_improvement

        resolvers = {p.ldns for p in dataset.prefixes}
        pooled = redirection_improvement(
            dataset, train_redirection_policy(dataset)
        )
        ecs = redirection_improvement(
            dataset, train_redirection_policy(dataset, ecs_resolvers=resolvers)
        )
        assert ecs.frac_improved >= pooled.frac_improved - 0.05


class TestPolicyApi:
    def test_unknown_resolver_stays_anycast(self):
        policy = RedirectionPolicy(choices={"x": "lhr"}, margin_ms=1.0)
        assert policy.choice_for("unknown") == ANYCAST
        assert policy.choice_for(None) == ANYCAST

    def test_frac_redirected(self):
        policy = RedirectionPolicy(
            choices={"a": "lhr", "b": ANYCAST}, margin_ms=1.0
        )
        assert policy.frac_redirected == pytest.approx(0.5)
        assert RedirectionPolicy(choices={}, margin_ms=1.0).frac_redirected == 0.0


class TestEvaluationSlice:
    def test_slices_complement_training(self, dataset):
        window = evaluation_slice(dataset, 0.5)
        assert window.start == dataset.n_requests // 2
        assert window.stop == dataset.n_requests

    def test_bounds(self, dataset):
        with pytest.raises(AnalysisError):
            evaluation_slice(dataset, 1.0)
