"""Schema guard for the committed ``BENCH_perf.json`` baseline.

The perf suite (``benchmarks/perf.py``) validates its own output before
writing; this test keeps the *committed* baseline and the validator in
lockstep — any schema drift (renamed field, missing kernel, edited
baseline) fails tier-1 rather than surfacing when CI uploads a stale
artifact.
"""

from __future__ import annotations

import copy
import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_perf.json"


def _load_perf_module():
    spec = importlib.util.spec_from_file_location(
        "bench_perf", REPO_ROOT / "benchmarks" / "perf.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def perf():
    return _load_perf_module()


@pytest.fixture(scope="module")
def baseline():
    return json.loads(BASELINE.read_text())


class TestCommittedBaseline:
    def test_validates(self, perf, baseline):
        perf.validate_payload(baseline)

    def test_covers_three_kernels_at_three_scales(self, baseline):
        assert len(baseline["kernels"]) >= 3
        full_coverage = [
            k
            for k in baseline["kernels"]
            if {e["scale"] for e in k["scales"]} == {"small", "medium", "large"}
        ]
        assert len(full_coverage) >= 3

    def test_medium_synthesis_speedup_floor(self, baseline):
        """The tentpole acceptance bar: medium-scale edgefabric
        synthesis at least 5x over the scalar lane on the baseline
        machine.  (Timing floors apply to the committed baseline only —
        CI machines vary, so the CI smoke checks schema, not speed.)"""
        kernel = next(
            k
            for k in baseline["kernels"]
            if k["name"] == "edgefabric.synthesize"
        )
        medium = next(e for e in kernel["scales"] if e["scale"] == "medium")
        assert medium["speedup"] >= 5.0


class TestValidator:
    def test_rejects_missing_key(self, perf, baseline):
        broken = copy.deepcopy(baseline)
        del broken["meta"]
        with pytest.raises(ValueError, match="top-level keys"):
            perf.validate_payload(broken)

    def test_rejects_wrong_version(self, perf, baseline):
        broken = copy.deepcopy(baseline)
        broken["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            perf.validate_payload(broken)

    def test_rejects_extra_scale_field(self, perf, baseline):
        broken = copy.deepcopy(baseline)
        broken["kernels"][0]["scales"][0]["surprise"] = 1
        with pytest.raises(ValueError, match="scale entry keys"):
            perf.validate_payload(broken)

    def test_rejects_nonpositive_timing(self, perf, baseline):
        broken = copy.deepcopy(baseline)
        broken["kernels"][0]["scales"][0]["fast_s"] = 0.0
        with pytest.raises(ValueError, match="positive"):
            perf.validate_payload(broken)

    def test_rejects_duplicate_kernel(self, perf, baseline):
        broken = copy.deepcopy(baseline)
        broken["kernels"].append(copy.deepcopy(broken["kernels"][0]))
        with pytest.raises(ValueError, match="unique"):
            perf.validate_payload(broken)

    def test_rejects_too_few_kernels(self, perf, baseline):
        broken = copy.deepcopy(baseline)
        broken["kernels"] = broken["kernels"][:2]
        with pytest.raises(ValueError, match="three kernels"):
            perf.validate_payload(broken)
