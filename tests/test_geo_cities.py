"""Tests for the embedded world-cities dataset."""

import pytest

from repro.errors import AnalysisError
from repro.geo import (
    COUNTRY_REGIONS,
    Region,
    WORLD_CITIES,
    cities_by_country,
    city_named,
)


class TestDatasetIntegrity:
    def test_reasonable_size(self):
        assert len(WORLD_CITIES) >= 120

    def test_names_unique(self):
        names = [c.name for c in WORLD_CITIES]
        assert len(names) == len(set(names))

    def test_every_country_has_region(self):
        for city in WORLD_CITIES:
            assert city.country in COUNTRY_REGIONS, city.name

    def test_all_regions_populated(self):
        regions = {c.region for c in WORLD_CITIES}
        assert regions == set(Region)

    def test_populations_positive(self):
        assert all(c.population_m > 0 for c in WORLD_CITIES)

    def test_coordinates_sane(self):
        for city in WORLD_CITIES:
            assert -90 <= city.location.lat <= 90
            assert -180 <= city.location.lon <= 180

    def test_known_coordinates(self):
        tokyo = city_named("Tokyo")
        assert tokyo.location.lat == pytest.approx(35.68, abs=0.5)
        assert tokyo.country == "JP"
        assert tokyo.region is Region.ASIA


class TestLookups:
    def test_city_named_found(self):
        assert city_named("London").country == "GB"

    def test_city_named_missing(self):
        with pytest.raises(AnalysisError):
            city_named("Atlantis")

    def test_cities_by_country(self):
        us = cities_by_country("US")
        assert len(us) >= 15
        assert all(c.country == "US" for c in us)

    def test_cities_by_country_case_insensitive(self):
        assert cities_by_country("us") == cities_by_country("US")

    def test_cities_by_country_unknown_is_empty(self):
        assert cities_by_country("ZZ") == []

    def test_distance_between_cities(self):
        paris = city_named("Paris")
        london = city_named("London")
        assert 300 < paris.distance_km(london) < 400
