"""Tests for repro.obs: event schema, tracer lifecycle, collection API."""

import logging
import threading

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import trace as trace_mod


@pytest.fixture(autouse=True)
def _reset_tracer():
    """Guarantee every test starts and ends with tracing disabled."""
    obs.disable()
    yield
    obs.disable()


def _events_of(kind):
    return [e for e in obs.events() if e["kind"] == kind]


class TestSchema:
    def test_make_event_stamps_common_fields(self):
        event = obs.make_event("counter", "x", "run1", 1.5, value=2)
        assert event["v"] == obs.SCHEMA_VERSION
        assert event["kind"] == "counter"
        assert event["name"] == "x"
        assert event["run"] == "run1"
        assert event["ts"] == 1.5
        assert isinstance(event["pid"], int)
        assert obs.validate_event(event) is event

    def test_encode_decode_roundtrip(self):
        event = obs.make_event("gauge", "g", "run1", 0.25, value=7.0)
        line = obs.encode_line(event)
        assert "\n" not in line
        assert obs.decode_line(line) == event

    @pytest.mark.parametrize(
        "mutation",
        [
            {"v": 99},
            {"kind": "bogus"},
            {"name": ""},
            {"ts": "soon"},
            {"value": None},
        ],
    )
    def test_validate_rejects_malformed(self, mutation):
        event = obs.make_event("counter", "x", "run1", 1.0, value=1)
        event.update(mutation)
        with pytest.raises(ObsError):
            obs.validate_event(event)

    def test_span_end_requires_nonnegative_duration(self):
        event = obs.make_event("span_end", "p", "run1", 1.0, span=1, dur_s=-0.1)
        with pytest.raises(ObsError):
            obs.validate_event(event)

    def test_new_run_ids_are_distinct(self):
        assert obs.new_run_id() != obs.new_run_id()


class TestLifecycle:
    def test_disabled_by_default_and_all_entry_points_noop(self):
        assert not obs.is_enabled()
        assert obs.current_run_id() is None
        assert obs.events() == []
        with obs.span("phase"):
            obs.counter("c")
            obs.gauge("g", 1.0)
            obs.log_event("INFO", "msg")
        assert obs.ingest([obs.make_event("counter", "x", "r", 0.0, value=1)]) == 0
        assert obs.events() == []

    def test_disabled_span_is_shared_null_instance(self):
        assert obs.span("a") is obs.span("b") is trace_mod._NULL_SPAN

    def test_enable_disable_cycle(self):
        tracer = obs.enable("runX")
        assert obs.is_enabled()
        assert obs.current_run_id() == "runX"
        obs.counter("c")
        drained = obs.disable()
        assert not obs.is_enabled()
        assert len(drained) == 1 and drained[0]["run"] == tracer.run_id
        assert obs.disable() == []  # idempotent

    def test_double_enable_raises(self):
        obs.enable()
        with pytest.raises(ObsError, match="already enabled"):
            obs.enable()


class TestCollection:
    def test_span_emits_start_end_pair_with_duration(self):
        obs.enable()
        with obs.span("phase", seed=3):
            pass
        starts, ends = _events_of("span_start"), _events_of("span_end")
        assert len(starts) == len(ends) == 1
        assert starts[0]["attrs"] == {"seed": 3}
        assert starts[0]["span"] == ends[0]["span"]
        assert ends[0]["dur_s"] >= 0.0

    def test_nested_spans_record_parent(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        starts = {e["name"]: e for e in _events_of("span_start")}
        assert "parent" not in starts["outer"]
        assert starts["inner"]["parent"] == starts["outer"]["span"]

    def test_span_records_error_and_propagates(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        (end,) = _events_of("span_end")
        assert end["error"] == "ValueError"

    def test_traced_decorator(self):
        @obs.traced("math.double")
        def double(x):
            return 2 * x

        assert double(4) == 8  # disabled: plain call, nothing recorded
        obs.enable()
        assert double(5) == 10
        (end,) = _events_of("span_end")
        assert end["name"] == "math.double"

    def test_counter_and_gauge_values(self):
        obs.enable()
        obs.counter("hits")
        obs.counter("hits", 4)
        obs.gauge("depth", 7.5)
        counters = _events_of("counter")
        assert [e["value"] for e in counters] == [1, 4]
        (g,) = _events_of("gauge")
        assert g["value"] == 7.5

    def test_thread_safety_no_lost_events(self):
        obs.enable()

        def worker():
            for _ in range(200):
                obs.counter("t")
                with obs.span("t.span"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(_events_of("counter")) == 800
        assert len(_events_of("span_end")) == 800
        for event in obs.events():
            obs.validate_event(event)


class TestCaptureAndIngest:
    def test_capture_owns_tracer_when_disabled(self):
        with obs.capture(run_id="worker7") as captured:
            assert obs.is_enabled()
            obs.counter("inside")
        assert not obs.is_enabled()
        assert captured.run_id == "worker7"
        assert [e["name"] for e in captured.events] == ["inside"]

    def test_capture_tees_when_enabled(self):
        obs.enable()
        obs.counter("before")
        with obs.capture() as captured:
            obs.counter("during")
        assert [e["name"] for e in captured.events] == ["during"]
        # ...and the ambient stream kept everything.
        assert [e["name"] for e in _events_of("counter")] == ["before", "during"]

    def test_capture_keeps_events_when_block_raises(self):
        with pytest.raises(RuntimeError):
            with obs.capture() as captured:
                obs.counter("partial")
                raise RuntimeError("fail")
        assert [e["name"] for e in captured.events] == ["partial"]

    def test_ingest_merges_and_tags_replays(self):
        with obs.capture() as captured:
            obs.counter("recorded")
        obs.enable()
        assert obs.ingest(captured.events) == 1
        assert obs.ingest(captured.events, replay=True) == 1
        fresh, replayed = _events_of("counter")
        assert "replay" not in fresh
        assert replayed["replay"] is True
        # replay tagging copies: the source event is untouched.
        assert "replay" not in captured.events[0]

    def test_ingest_validates(self):
        obs.enable()
        with pytest.raises(ObsError):
            obs.ingest([{"kind": "counter"}])


class TestOutput:
    def test_write_jsonl_roundtrip(self, tmp_path):
        obs.enable()
        obs.counter("a")
        obs.gauge("b", 2.0)
        path = tmp_path / "trace.jsonl"
        assert obs.write_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert [obs.decode_line(line)["name"] for line in lines] == ["a", "b"]

    def test_log_handler_bridges_records(self):
        logger = logging.getLogger("repro.test_obs_trace")
        logger.setLevel(logging.INFO)
        # No propagation: a CLI test may have attached its own
        # TraceLogHandler to the parent "repro" logger, which would
        # bridge the record a second time.
        logger.propagate = False
        handler = obs.TraceLogHandler()
        logger.addHandler(handler)
        try:
            logger.info("ignored while disabled")
            obs.enable()
            logger.info("value=%d", 42)
        finally:
            logger.removeHandler(handler)
            logger.propagate = True
        (event,) = _events_of("log")
        assert event["msg"] == "value=42"
        assert event["level"] == "INFO"
        assert event["name"] == "repro.test_obs_trace"
