"""Property-based tests of BGP propagation on random small topologies.

Random valley-free worlds are generated directly (not via the full
generator) so the invariants are exercised on arbitrary shapes: random
tier sizes, random multihoming, random peering.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geo import WORLD_CITIES
from repro.bgp import RoutePref, propagate
from repro.topology import (
    ASGraph,
    ASRole,
    AutonomousSystem,
    Relationship,
)
from repro.topology.asgraph import link_between


@st.composite
def random_world(draw):
    """A random 3-tier valley-free topology."""
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31 - 1)))
    n_top = draw(st.integers(min_value=1, max_value=3))
    n_mid = draw(st.integers(min_value=1, max_value=5))
    n_leaf = draw(st.integers(min_value=1, max_value=8))
    cities = list(WORLD_CITIES[:20])
    graph = ASGraph()
    tops = list(range(10, 10 + n_top))
    mids = list(range(100, 100 + n_mid))
    leaves = list(range(1000, 1000 + n_leaf))

    def city_sample(k):
        idx = rng.choice(len(cities), size=min(k, len(cities)), replace=False)
        return tuple(cities[i] for i in sorted(idx))

    for asn in tops:
        graph.add_as(AutonomousSystem(asn, f"t{asn}", ASRole.TIER1, city_sample(4)))
    for asn in mids:
        graph.add_as(AutonomousSystem(asn, f"m{asn}", ASRole.TRANSIT, city_sample(3)))
    for asn in leaves:
        graph.add_as(AutonomousSystem(asn, f"l{asn}", ASRole.EYEBALL, city_sample(2)))
    # Tier-1 clique.
    for i, x in enumerate(tops):
        for y in tops[i + 1 :]:
            graph.add_link(link_between(x, y, Relationship.PEER, city_sample(2)))
    # Mids buy from 1-2 tops; some peer with each other.
    for asn in mids:
        ups = rng.choice(tops, size=min(len(tops), int(rng.integers(1, 3))), replace=False)
        for up in sorted(int(u) for u in ups):
            graph.add_link(
                link_between(asn, up, Relationship.CUSTOMER, city_sample(1), customer_asn=asn)
            )
    for i, x in enumerate(mids):
        for y in mids[i + 1 :]:
            if rng.random() < 0.3:
                graph.add_link(link_between(x, y, Relationship.PEER, city_sample(1)))
    # Leaves buy from 1-2 mids (or a top when there are no mids).
    for asn in leaves:
        pool = mids if mids else tops
        ups = rng.choice(pool, size=min(len(pool), int(rng.integers(1, 3))), replace=False)
        for up in sorted(int(u) for u in ups):
            graph.add_link(
                link_between(asn, up, Relationship.CUSTOMER, city_sample(1), customer_asn=asn)
            )
    origin = leaves[int(rng.integers(0, len(leaves)))]
    return graph, origin


def _step_kind(graph, x, y):
    """Direction of traffic flowing x -> y."""
    link = graph.link(x, y)
    if link.relationship is Relationship.PEER:
        return "peer"
    return "down" if link.customer_asn == y else "up"


@given(random_world())
@settings(max_examples=60, deadline=None)
def test_propagation_invariants(world):
    graph, origin = world
    graph.validate()
    table = propagate(graph, origin)

    for asys in graph.ases():
        route = table.best(asys.asn)
        if route is None:
            continue
        # 1. Paths start at the holder and end at the origin, loop-free.
        assert route.path[0] == asys.asn
        assert route.path[-1] == origin
        assert len(set(route.path)) == len(route.path)
        # 2. Advertised length never undershoots the hop count.
        assert route.advertised_length >= route.as_hops
        # 3. Valley-freedom: traffic goes up, then at most one peer step,
        #    then down; never up or sideways after going down.
        state = "up"
        for x, y in zip(route.path[:-1], route.path[1:]):
            kind = _step_kind(graph, x, y)
            if state == "up":
                if kind == "peer":
                    state = "peered"
                elif kind == "down":
                    state = "down"
            elif state == "peered":
                assert kind == "down", route.path
                state = "down"
            else:
                assert kind == "down", route.path
        # 4. Preference class matches the first step.
        if route.as_hops:
            first = _step_kind(graph, route.path[0], route.path[1])
            expected = {
                "up": RoutePref.PROVIDER,
                "peer": RoutePref.PEER,
                "down": RoutePref.CUSTOMER,
            }[first]
            assert route.pref is expected

    # 5. Every AS in the origin's connected component holds a route
    #    (valley-free reachability holds in a hierarchy).
    reachable = _undirected_component(graph, origin)
    for asn in reachable:
        assert table.best(asn) is not None


def _undirected_component(graph, start):
    seen = {start}
    stack = [start]
    while stack:
        current = stack.pop()
        for n in graph.neighbors(current):
            if n not in seen:
                seen.add(n)
                stack.append(n)
    return seen


@given(random_world())
@settings(max_examples=30, deadline=None)
def test_forwarding_consistency(world):
    """Following per-AS best next hops always reaches the origin without
    looping (stable-state forwarding is consistent)."""
    graph, origin = world
    table = propagate(graph, origin)
    for asys in graph.ases():
        if table.best(asys.asn) is None:
            continue
        current = asys.asn
        hops = 0
        while current != origin:
            nxt = table.next_hop(current)
            assert nxt is not None
            current = nxt
            hops += 1
            assert hops <= len(graph), "forwarding loop"


def _selection_key(route):
    """Ordering key of BGP selection: customer > peer > provider class,
    then shortest advertised length, then lowest next-hop ASN.  Lower
    sorts better."""
    next_hop = route.next_hop if route.as_hops else -1
    return (-int(route.pref), route.advertised_length, next_hop)


@given(random_world())
@settings(max_examples=40, deadline=None)
def test_stability_oracle_both_lanes(world):
    """The propagated state is a *stable* valley-free equilibrium.

    Stability oracle: no AS strictly prefers any route a neighbor
    currently exports to it over the route it holds, and no routeless
    AS has any route on offer at all.  Checked for both lanes, which
    must also agree table-for-table (same best route per AS).
    """
    graph, origin = world
    scalar = propagate(graph, origin, fast=False)
    fast = propagate(graph, origin, fast=True)
    assert scalar._routes == fast._routes

    for table in (scalar, fast):
        for asys in graph.ases():
            asn = asys.asn
            own = table.best(asn)
            if own is not None and asn != origin:
                # Valley-freedom of the held path.
                state = "up"
                for x, y in zip(own.path[:-1], own.path[1:]):
                    kind = _step_kind(graph, x, y)
                    if state == "up":
                        if kind == "peer":
                            state = "peered"
                        elif kind == "down":
                            state = "down"
                    else:
                        assert kind == "down", own.path
                        state = "down"
            for neighbor in graph.neighbors(asn):
                offered = table.exported_route(neighbor, asn)
                if own is None:
                    assert offered is None, (
                        f"routeless AS {asn} is offered {offered} by "
                        f"{neighbor} — the state is not stable"
                    )
                elif offered is not None and asn != origin:
                    assert _selection_key(own) <= _selection_key(offered), (
                        f"AS {asn} holds {own} but strictly prefers "
                        f"{offered} from {neighbor}"
                    )
