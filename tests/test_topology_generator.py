"""Tests for the synthetic Internet generator."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    ASRole,
    PeeringKind,
    Relationship,
    TopologyConfig,
    build_internet,
)
from repro.topology.generator import EYEBALL_ASN_BASE, PROVIDER_ASN


class TestConfigValidation:
    def test_defaults_valid(self):
        TopologyConfig()

    def test_duplicate_pop_codes(self):
        with pytest.raises(TopologyError):
            TopologyConfig(pop_cities=(("aaa", "London"), ("aaa", "Paris")))

    def test_dc_must_be_a_pop(self):
        with pytest.raises(TopologyError):
            TopologyConfig(
                pop_cities=(("lhr", "London"),), dc_pop_code="xxx"
            )

    def test_fraction_bounds(self):
        with pytest.raises(TopologyError):
            TopologyConfig(pni_fraction=1.5)

    def test_positive_counts(self):
        with pytest.raises(TopologyError):
            TopologyConfig(n_eyeball=0)


class TestGeneratedStructure:
    def test_role_partition(self, small_internet):
        graph = small_internet.graph
        assert graph.get(small_internet.provider_asn).role is ASRole.CONTENT
        for asn in small_internet.tier1_asns:
            assert graph.get(asn).role is ASRole.TIER1
        for asn in small_internet.transit_asns:
            assert graph.get(asn).role is ASRole.TRANSIT
        for asn in small_internet.eyeball_asns:
            assert graph.get(asn).role is ASRole.EYEBALL

    def test_counts_match_config(self, small_internet, small_config):
        assert len(small_internet.tier1_asns) == small_config.n_tier1
        assert len(small_internet.transit_asns) == small_config.n_transit
        # Eyeball allocation rounds per-country with a minimum of one per
        # country, so the realised count can exceed a small target by up
        # to the number of countries.
        from repro.geo import COUNTRY_REGIONS

        n = len(small_internet.eyeball_asns)
        assert n >= min(small_config.n_eyeball, len(COUNTRY_REGIONS))
        assert n <= small_config.n_eyeball + len(COUNTRY_REGIONS)

    def test_tier1_clique(self, small_internet):
        graph = small_internet.graph
        tier1s = small_internet.tier1_asns
        for i, x in enumerate(tier1s):
            for y in tier1s[i + 1 :]:
                link = graph.link(x, y)
                assert link.relationship is Relationship.PEER

    def test_tier1s_are_transit_free(self, small_internet):
        graph = small_internet.graph
        for asn in small_internet.tier1_asns:
            assert graph.providers(asn) == []

    def test_every_transit_has_tier1_provider(self, small_internet):
        graph = small_internet.graph
        for asn in small_internet.transit_asns:
            providers = graph.providers(asn)
            assert providers
            assert all(p in small_internet.tier1_asns for p in providers)

    def test_every_eyeball_has_a_provider(self, small_internet):
        graph = small_internet.graph
        for asn in small_internet.eyeball_asns:
            assert graph.providers(asn)

    def test_acyclic_economics(self, small_internet):
        small_internet.graph.validate()

    def test_provider_buys_transit_from_tier1s(self, small_internet, small_config):
        graph = small_internet.graph
        providers = graph.providers(small_internet.provider_asn)
        assert len(providers) == small_config.provider_transit_count
        assert all(p in small_internet.tier1_asns for p in providers)

    def test_provider_transit_covers_all_pops(self, small_internet):
        graph = small_internet.graph
        pop_cities = {p.city for p in small_internet.wan.pops}
        for t1 in graph.providers(small_internet.provider_asn):
            link = graph.link(small_internet.provider_asn, t1)
            assert pop_cities <= set(link.cities)

    def test_provider_has_both_peering_kinds(self, small_internet):
        graph = small_internet.graph
        kinds = {
            graph.link(small_internet.provider_asn, p).kind
            for p in graph.peers(small_internet.provider_asn)
        }
        assert PeeringKind.PRIVATE in kinds
        assert PeeringKind.PUBLIC in kinds

    def test_eyeball_user_weights_positive(self, small_internet):
        for asn in small_internet.eyeball_asns:
            assert small_internet.graph.get(asn).user_weight > 0

    def test_asn_blocks(self, small_internet):
        assert small_internet.provider_asn == PROVIDER_ASN
        assert all(a >= EYEBALL_ASN_BASE for a in small_internet.eyeball_asns)


class TestDeterminism:
    def test_same_seed_same_topology(self, small_config):
        a = build_internet(small_config)
        b = build_internet(small_config)
        assert [x.asn for x in a.graph.ases()] == [x.asn for x in b.graph.ases()]
        links_a = [(l.a, l.b, l.relationship, tuple(c.name for c in l.cities)) for l in a.graph.links()]
        links_b = [(l.a, l.b, l.relationship, tuple(c.name for c in l.cities)) for l in b.graph.links()]
        assert links_a == links_b

    def test_different_seed_different_topology(self, small_config):
        import dataclasses

        a = build_internet(small_config)
        b = build_internet(dataclasses.replace(small_config, seed=small_config.seed + 1))
        links_a = [(l.a, l.b) for l in a.graph.links()]
        links_b = [(l.a, l.b) for l in b.graph.links()]
        assert links_a != links_b


class TestWanDefaults:
    def test_default_backbone_used_for_default_pops(self):
        internet = build_internet(TopologyConfig(n_eyeball=10, n_transit=7, n_tier1=2))
        # One default edge spot-checked through the WAN distances.
        assert internet.wan.one_way_ms("iad", "lga") > 0

    def test_india_attaches_eastward_only(self):
        """The curated backbone must not shortcut India to Europe."""
        internet = build_internet(TopologyConfig(n_eyeball=10, n_transit=7, n_tier1=2))
        path = internet.wan.path("bom", "cbf")
        codes = [p.code for p in path]
        # The WAN route from Mumbai to the US data center goes via
        # Singapore and the Pacific, never via Europe.
        assert "sin" in codes
        assert not {"lhr", "cdg", "fra", "ams", "mad"} & set(codes)

    def test_custom_pops_get_mesh_backbone(self):
        config = TopologyConfig(
            n_eyeball=10,
            n_transit=7,
            n_tier1=2,
            pop_cities=(("lhr", "London"), ("cdg", "Paris"), ("nrt", "Tokyo")),
            dc_pop_code="lhr",
        )
        internet = build_internet(config)
        # Connectivity is guaranteed by construction.
        assert internet.wan.one_way_ms("lhr", "nrt") > 0

    def test_pops_with_link_to(self, small_internet):
        t1 = small_internet.graph.providers(small_internet.provider_asn)[0]
        pops = small_internet.pops_with_link_to(t1)
        assert len(pops) == len(small_internet.wan.pops)
