"""Tests for CDF comparison metrics."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis import (
    area_between,
    ks_distance,
    quantile_shift,
    weighted_cdf,
)


def cdf_of(values, weights=None):
    return weighted_cdf(values, weights)


class TestKsDistance:
    def test_identical_is_zero(self):
        a = cdf_of([1.0, 2.0, 3.0])
        assert ks_distance(a, a) == 0.0

    def test_disjoint_is_one(self):
        a = cdf_of([0.0, 1.0])
        b = cdf_of([10.0, 11.0])
        assert ks_distance(a, b) == pytest.approx(1.0)

    def test_symmetric(self):
        a = cdf_of([1.0, 2.0, 5.0])
        b = cdf_of([1.5, 3.0, 4.0])
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_bounded(self):
        rng = np.random.default_rng(0)
        a = cdf_of(rng.normal(size=100))
        b = cdf_of(rng.normal(1.0, 2.0, size=100))
        assert 0.0 <= ks_distance(a, b) <= 1.0


class TestAreaBetween:
    def test_shift_equals_area(self):
        """Shifting a distribution by d gives Wasserstein distance d."""
        rng = np.random.default_rng(1)
        values = rng.uniform(0.0, 10.0, size=400)
        a = cdf_of(values)
        b = cdf_of(values + 2.5)
        assert area_between(a, b) == pytest.approx(2.5, rel=0.02)

    def test_identical_is_zero(self):
        a = cdf_of([3.0, 7.0])
        assert area_between(a, a) == 0.0

    def test_symmetric(self):
        a = cdf_of([1.0, 4.0])
        b = cdf_of([2.0, 3.0])
        assert area_between(a, b) == pytest.approx(area_between(b, a))


class TestQuantileShift:
    def test_signed(self):
        a = cdf_of([1.0, 2.0, 3.0])
        b = cdf_of([11.0, 12.0, 13.0])
        assert quantile_shift(a, b, 0.5) == pytest.approx(10.0)
        assert quantile_shift(b, a, 0.5) == pytest.approx(-10.0)

    def test_validation(self):
        a = cdf_of([1.0])
        with pytest.raises(AnalysisError):
            quantile_shift(a, a, 1.5)


class TestSeedStability:
    def test_fig1_stable_across_seeds(self, small_config):
        """Two seeds of the same world produce nearby Figure 1 CDFs —
        the reproduction is a property of the model, not of one seed."""
        import dataclasses

        from repro.core import PopRoutingStudy

        cdfs = []
        for seed in (3, 4):
            result = PopRoutingStudy(
                seed=seed, n_prefixes=60, days=0.5, topology=dataclasses.replace(small_config, seed=seed)
            ).run()
            cdfs.append(result.figures["fig1"].cdf)
        # 60 prefixes is tiny, so a few heavy pairs dominate the weighted
        # CDF and the KS statistic wobbles; the Wasserstein bound (in ms)
        # is the meaningful closeness criterion here.
        assert ks_distance(cdfs[0], cdfs[1]) < 0.6
        assert area_between(cdfs[0], cdfs[1]) < 15.0
