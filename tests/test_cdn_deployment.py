"""Tests for the CDN deployment: anycast and unicast routing state."""

import pytest

from repro.errors import RoutingError
from repro.geo import great_circle_km
from repro.bgp import Grooming
from repro.cdn import CdnDeployment
from repro.workloads import generate_client_prefixes


@pytest.fixture(scope="module")
def deployment(small_internet):
    return CdnDeployment(small_internet)


@pytest.fixture(scope="module")
def prefixes(small_internet):
    return generate_client_prefixes(small_internet, 30, seed=6)


class TestTables:
    def test_unicast_table_per_front_end(self, deployment, small_internet):
        assert set(deployment.unicast_tables) == set(
            small_internet.wan.pop_codes
        )

    def test_unicast_scoped_to_site(self, deployment, small_internet):
        for code, table in deployment.unicast_tables.items():
            assert table.origin_cities == frozenset(
                {small_internet.wan.pop(code).city}
            )

    def test_anycast_unscoped(self, deployment):
        assert deployment.anycast_table.origin_cities is None


class TestCatchment:
    def test_catchment_is_a_front_end(self, deployment, prefixes):
        codes = {p.code for p in deployment.front_ends}
        for prefix in prefixes:
            assert deployment.catchment(prefix).code in codes

    def test_anycast_path_ends_at_provider(self, deployment, prefixes):
        for prefix in prefixes[:10]:
            path = deployment.anycast_path(prefix)
            assert path.as_path[0] == prefix.asn
            assert path.as_path[-1] == deployment.internet.provider_asn

    def test_unicast_path_reaches_site(self, deployment, prefixes):
        target = deployment.front_ends[0]
        for prefix in prefixes[:10]:
            path = deployment.unicast_path(prefix, target.code)
            if path is None:
                continue
            assert path.as_path[-1] == deployment.internet.provider_asn

    def test_unknown_front_end_rejected(self, deployment, prefixes):
        with pytest.raises(RoutingError):
            deployment.unicast_path(prefixes[0], "zzz")


class TestNearbyFrontEnds:
    def test_sorted_by_distance(self, deployment, prefixes):
        prefix = prefixes[0]
        nearby = deployment.nearby_front_ends(prefix, 5)
        assert len(nearby) == 5
        distances = [
            great_circle_km(prefix.city.location, p.city.location)
            for p in nearby
        ]
        assert distances == sorted(distances)

    def test_k_larger_than_inventory(self, deployment, prefixes):
        nearby = deployment.nearby_front_ends(prefixes[0], 10_000)
        assert len(nearby) == len(deployment.front_ends)


class TestGroomedDeployment:
    def test_withdrawal_changes_catchments(self, small_internet, prefixes):
        plain = CdnDeployment(small_internet)
        # Withdraw the busiest catchment city and verify its clients move.
        from collections import Counter

        catchments = Counter(plain.catchment(p).code for p in prefixes)
        busiest, count = catchments.most_common(1)[0]
        assert count > 0
        grooming = Grooming.ungroomed(
            [p.city for p in small_internet.wan.pops]
        )
        grooming.withdraw_city(small_internet.wan.pop(busiest).city)
        groomed = CdnDeployment(small_internet, grooming=grooming)
        for prefix in prefixes:
            assert groomed.catchment(prefix).code != busiest or (
                # The nearest-pop mapping may still name the withdrawn
                # PoP if ingress lands nearby; the ingress city itself
                # must not be the withdrawn city.
                groomed.anycast_path(prefix).ingress_city
                != small_internet.wan.pop(busiest).city
            )
