"""Tests for the session ingest plane: feed → snapshot → merge.

The central contract here is determinism: identical streams yield
byte-identical snapshots, and disjoint-key shard merges are
byte-identical to a single ingestor having seen everything.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import StreamError
from repro.stream import (
    ExactIngestor,
    IngestConfig,
    IngestSnapshot,
    SessionBatch,
    SessionIngestor,
    merge_snapshots,
)

KEY_A = ("iad", "p0", 0)
KEY_B = ("lhr", "p1", 1)


def batch_for(key, times, rtts) -> SessionBatch:
    return SessionBatch.from_rows((key, t, r) for t, r in zip(times, rtts))


class TestSessionBatch:
    def test_from_rows_builds_key_table(self):
        batch = SessionBatch.from_rows(
            [(KEY_A, 0.1, 40.0), (KEY_B, 0.2, 80.0), (KEY_A, 0.3, 41.0)]
        )
        assert batch.key_table == (KEY_A, KEY_B)
        assert batch.key_ids.tolist() == [0, 1, 0]
        assert batch.n_sessions == 3

    def test_misaligned_columns_rejected(self):
        with pytest.raises(StreamError, match="aligned"):
            SessionBatch(
                key_table=(KEY_A,),
                key_ids=np.array([0, 0]),
                times_h=np.array([0.1]),
                rtt_ms=np.array([40.0]),
            )

    def test_out_of_range_key_id_rejected(self):
        with pytest.raises(StreamError, match="out of range"):
            SessionBatch(
                key_table=(KEY_A,),
                key_ids=np.array([1]),
                times_h=np.array([0.1]),
                rtt_ms=np.array([40.0]),
            )

    def test_nonfinite_rejected(self):
        with pytest.raises(StreamError, match="finite"):
            batch_for(KEY_A, [0.1], [np.nan])


class TestSessionIngestor:
    def test_feed_routes_sessions_to_cells(self):
        ingestor = SessionIngestor()
        ingestor.feed(
            SessionBatch.from_rows(
                [(KEY_A, 0.1, 40.0), (KEY_A, 0.3, 42.0), (KEY_B, 0.1, 80.0)]
            )
        )
        assert ingestor.sessions == 3 and ingestor.batches == 1
        assert ingestor.n_cells == 3  # A has two windows, B one

    def test_identical_streams_snapshot_identically(self):
        def run():
            ingestor = SessionIngestor()
            rng = np.random.default_rng(7)
            for start in range(4):
                times = start * 0.25 + rng.uniform(0.0, 0.25, 50)
                ingestor.feed(batch_for(KEY_A, times, rng.exponential(1.5, 50)))
            return ingestor.snapshot().to_json()

        assert run() == run()

    def test_watermark_advances_with_feed(self):
        ingestor = SessionIngestor()
        ingestor.feed(batch_for(KEY_A, [0.1, 0.6], [40.0, 41.0]))
        assert ingestor.watermark_h == 0.6

    def test_late_sessions_counted(self):
        ingestor = SessionIngestor(IngestConfig(allowed_lateness_windows=0))
        ingestor.feed(batch_for(KEY_A, [2.0], [40.0]))
        ingestor.feed(batch_for(KEY_A, [0.1], [39.0]))
        assert ingestor.late_dropped == 1
        assert ingestor.snapshot().late_dropped == 1

    def test_merge_requires_matching_config(self):
        with pytest.raises(StreamError, match="configs"):
            SessionIngestor(IngestConfig(sketch="p2")).merge(SessionIngestor())

    def test_merge_combines_counts(self):
        a, b = SessionIngestor(), SessionIngestor()
        a.feed(batch_for(KEY_A, [0.1], [40.0]))
        b.feed(batch_for(KEY_B, [0.2], [80.0]))
        a.merge(b)
        assert a.sessions == 2 and a.n_cells == 2
        assert a.watermark_h == 0.2


class TestShardMergeDeterminism:
    def _shard_stream(self, key, seed):
        rng = np.random.default_rng(seed)
        batches = []
        for start in range(3):
            times = start * 0.25 + np.sort(rng.uniform(0.0, 0.25, 120))
            batches.append(batch_for(key, times, rng.exponential(1.5, 120)))
        return batches

    def test_disjoint_shards_merge_byte_identical(self):
        """Merging disjoint-key shard snapshots == one ingestor seeing
        both streams, down to the serialized bytes."""
        shard_a = SessionIngestor()
        for batch in self._shard_stream(KEY_A, 10):
            shard_a.feed(batch)
        shard_b = SessionIngestor()
        for batch in self._shard_stream(KEY_B, 11):
            shard_b.feed(batch)

        # The single-pass twin interleaves the shards' batches in time
        # order (concatenating whole streams would make every B batch
        # late against A's final watermark).
        single = SessionIngestor()
        for a_batch, b_batch in zip(
            self._shard_stream(KEY_A, 10), self._shard_stream(KEY_B, 11)
        ):
            single.feed(a_batch)
            single.feed(b_batch)

        merged = merge_snapshots([shard_a.snapshot(), shard_b.snapshot()])
        assert merged.to_json() == single.snapshot().to_json()

    def test_ingestor_merge_matches_snapshot_merge(self):
        shard_a = SessionIngestor()
        for batch in self._shard_stream(KEY_A, 10):
            shard_a.feed(batch)
        shard_b = SessionIngestor()
        for batch in self._shard_stream(KEY_B, 11):
            shard_b.feed(batch)
        via_snapshots = merge_snapshots(
            [shard_a.snapshot(), shard_b.snapshot()]
        ).to_json()
        shard_a.merge(shard_b)
        assert shard_a.snapshot().to_json() == via_snapshots

    def test_merge_snapshots_rejects_mixed_configs(self):
        a = SessionIngestor(IngestConfig(sketch="p2")).snapshot()
        b = SessionIngestor().snapshot()
        with pytest.raises(StreamError, match="configs"):
            merge_snapshots([a, b])

    def test_merge_zero_snapshots_rejected(self):
        with pytest.raises(StreamError, match="zero"):
            merge_snapshots([])


class TestSnapshotSerialization:
    def _snapshot(self):
        ingestor = SessionIngestor()
        rng = np.random.default_rng(12)
        for start in range(3):
            times = start * 0.25 + rng.uniform(0.0, 0.25, 40)
            ingestor.feed(batch_for(KEY_A, times, rng.exponential(1.5, 40)))
        return ingestor.snapshot()

    def test_json_roundtrip_byte_identical(self):
        snap = self._snapshot()
        text = snap.to_json()
        assert IngestSnapshot.from_json(text).to_json() == text

    def test_malformed_snapshot_rejected(self):
        with pytest.raises(StreamError, match="malformed"):
            IngestSnapshot.from_dict({"kind": "ingest-snapshot", "schema": 1})

    def test_wrong_kind_rejected(self):
        with pytest.raises(StreamError, match="not an ingest snapshot"):
            IngestSnapshot.from_dict({"kind": "other", "schema": 1})

    def test_garbage_json_rejected(self):
        with pytest.raises(StreamError, match="JSON"):
            IngestSnapshot.from_json("{torn")

    def test_median_matrix_layout(self):
        snap = self._snapshot()
        pairs = [
            SimpleNamespace(pop_code="iad", prefix=SimpleNamespace(pid="p0")),
            SimpleNamespace(pop_code="lhr", prefix=SimpleNamespace(pid="p9")),
        ]
        times = np.arange(0.0, 1.0, 0.25)
        out = snap.median_matrix(pairs, times, max_routes=2)
        assert out.shape == (2, 4, 2)
        assert np.isfinite(out[0, :3, 0]).all()  # three fed windows
        assert np.isnan(out[0, 3, 0])  # nothing landed in window 3
        assert np.isnan(out[0, :, 1]).all()  # route 1 never fed
        assert np.isnan(out[1]).all()  # unknown pair stays NaN


class TestExactIngestor:
    def test_matches_numpy_median_per_cell(self):
        exact = ExactIngestor()
        rng = np.random.default_rng(13)
        times = rng.uniform(0.0, 0.25, 30)
        rtts = rng.exponential(1.5, 30)
        exact.feed(batch_for(KEY_A, times, rtts))
        assert exact.medians()[(KEY_A, 0)] == float(np.median(rtts))

    def test_merge_extends_cells(self):
        a, b = ExactIngestor(), ExactIngestor()
        a.feed(batch_for(KEY_A, [0.1], [40.0]))
        b.feed(batch_for(KEY_A, [0.2], [42.0]))
        a.merge(b)
        assert a.medians()[(KEY_A, 0)] == 41.0
        assert a.sessions == 2

    def test_merge_requires_matching_window(self):
        with pytest.raises(StreamError, match="windows"):
            ExactIngestor(window_minutes=15.0).merge(
                ExactIngestor(window_minutes=5.0)
            )

    def test_retains_late_samples(self):
        """Documented asymmetry: the exact lane has no watermark."""
        exact = ExactIngestor()
        exact.feed(batch_for(KEY_A, [5.0], [40.0]))
        exact.feed(batch_for(KEY_A, [0.1], [39.0]))
        assert (KEY_A, 0) in exact.medians()
