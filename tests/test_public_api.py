"""API-surface tests: the documented public names exist and import.

Guards against accidental breakage of `__all__` exports and keeps
docs/api.md honest.
"""

import importlib

import pytest

PUBLIC_API = {
    "repro": ["ReproError", "TopologyError", "RoutingError", "__version__"],
    "repro.geo": [
        "GeoPoint",
        "great_circle_km",
        "City",
        "WORLD_CITIES",
        "city_named",
        "Region",
        "region_of_country",
    ],
    "repro.topology": [
        "ASGraph",
        "AutonomousSystem",
        "Link",
        "ExitPolicy",
        "PrivateWan",
        "TopologyConfig",
        "build_internet",
        "save_internet",
        "load_internet",
    ],
    "repro.bgp": [
        "Route",
        "RoutePref",
        "propagate",
        "RoutingTable",
        "EgressDecisionProcess",
        "RouteClass",
        "Grooming",
        "dump_rib",
        "path_statistics",
        "valley_free_violations",
        "DynamicsEngine",
        "DynamicsConfig",
        "run_scenario",
        "ScenarioResult",
    ],
    "repro.netmodel": [
        "trace",
        "ForwardingPath",
        "CongestionModel",
        "queueing_delay_ms",
        "TcpPath",
        "transfer_time_s",
        "split_benefit_ms",
    ],
    "repro.workloads": [
        "ClientPrefix",
        "generate_client_prefixes",
        "assign_ldns",
        "sample_arrivals",
    ],
    "repro.edgefabric": [
        "run_measurement",
        "MeasurementConfig",
        "bgp_vs_best_alternate",
        "route_class_comparison",
        "persistence_decomposition",
        "extract_episodes",
        "replay_capacity_controller",
        "peering_reduction_study",
    ],
    "repro.cdn": [
        "CdnDeployment",
        "run_beacon_campaign",
        "train_redirection_policy",
        "train_hybrid_policy",
        "anycast_vs_best_unicast",
        "redirection_improvement",
        "groom_iteratively",
        "grooming_transfer_study",
        "site_count_study",
    ],
    "repro.cloudtiers": [
        "CloudDeployment",
        "Tier",
        "SpeedcheckerPlatform",
        "run_campaign",
        "country_medians",
        "ingress_distance_cdf",
        "india_case_study",
        "goodput_comparison",
        "split_tcp_study",
    ],
    "repro.availability": [
        "fail_pop_site",
        "anycast_vs_dns_failover",
        "peering_failure_study",
        "restore_link",
        "transient_pop_outage",
        "transient_provider_link_outage",
        "scenario_recovery",
    ],
    "repro.analysis": [
        "Cdf",
        "weighted_cdf",
        "weighted_quantile",
        "ks_distance",
        "area_between",
        "format_table",
        "ascii_plot",
    ],
    "repro.core": [
        "PopRoutingStudy",
        "AnycastCdnStudy",
        "CloudTiersStudy",
        "PeeringReductionStudy",
        "render_report",
        "validate_reproduction",
        "sweep_seeds",
        "aggregate_results",
        "edgefabric_topology",
        "cdn_topology",
        "cloud_topology",
    ],
    "repro.runner": [
        "JobSpec",
        "ResultStore",
        "CachedResult",
        "CampaignRunner",
        "CampaignReport",
        "JobMetrics",
        "run_campaign",
    ],
    "repro.obs": [
        "SCHEMA_VERSION",
        "EVENT_KINDS",
        "make_event",
        "validate_event",
        "encode_line",
        "decode_line",
        "new_run_id",
        "Tracer",
        "TraceLogHandler",
        "enable",
        "disable",
        "is_enabled",
        "span",
        "traced",
        "counter",
        "gauge",
        "histogram",
        "heartbeat",
        "flush_histograms",
        "suspended",
        "capture",
        "ingest",
        "write_jsonl",
        "RunManifest",
        "collect_manifest",
        "write_manifest",
        "read_manifest",
        "config_digest",
        "git_revision",
        "TraceSummary",
        "SpanStats",
        "summarize_events",
        "summarize_file",
        "load_events",
        "Histogram",
        "merge_hist_events",
        "quantile_table",
        "SpanNode",
        "SpanForest",
        "build_forest",
        "Profile",
        "profile_forest",
        "profile_events",
        "collapsed_stacks",
        "parse_collapsed",
        "CriticalPath",
        "critical_path",
        "ProgressTracker",
        "fold_heartbeats",
    ],
    "repro.lint": [
        "Finding",
        "Rule",
        "FileContext",
        "ImportMap",
        "LintConfig",
        "build_rules",
        "lint_paths",
        "load_baseline",
        "write_baseline",
        "split_baselined",
        "render_text",
        "render_json",
        "BaselineError",
    ],
    "repro.io": [
        "save_egress_dataset",
        "load_egress_dataset",
        "save_beacon_dataset",
        "load_beacon_dataset",
        "save_tier_dataset",
        "load_tier_dataset",
        "write_cdf_csv",
        "make_header",
        "check_header",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_public_names_importable(module_name):
    module = importlib.import_module(module_name)
    for name in PUBLIC_API[module_name]:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize(
    "module_name",
    [m for m in sorted(PUBLIC_API) if m not in ("repro.io",)],
)
def test_all_exports_resolve(module_name):
    """Every name in __all__ actually exists on the module."""
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        pytest.skip("module has no __all__")
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def test_every_public_callable_has_docstring():
    """Public functions and classes carry doc comments (deliverable e)."""
    import inspect

    missing = []
    for module_name, names in PUBLIC_API.items():
        module = importlib.import_module(module_name)
        for name in names:
            obj = getattr(module, name, None)
            if obj is None or not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module_name}.{name}")
    assert not missing, f"missing docstrings: {missing}"
